#include "exact/exact_mds.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace domset::exact {

namespace {

using graph::node_id;

/// Shared state of the branch-and-bound search.
class bb_search {
 public:
  bb_search(const graph::graph& g, std::uint64_t budget)
      : g_(g),
        budget_(budget),
        cover_count_(g.node_count(), 0),
        in_set_(g.node_count(), 0),
        banned_(g.node_count(), 0),
        best_set_(g.node_count(), 0) {
    uncovered_ = g.node_count();
    seed_greedy_upper_bound();
  }

  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }
  [[nodiscard]] std::uint64_t nodes_explored() const noexcept {
    return explored_;
  }
  [[nodiscard]] std::size_t best_size() const noexcept { return best_size_; }
  [[nodiscard]] const std::vector<std::uint8_t>& best_set() const noexcept {
    return best_set_;
  }

  void run() { recurse(0); }

 private:
  /// Greedy dominating set provides the initial incumbent.
  void seed_greedy_upper_bound() {
    const std::size_t n = g_.node_count();
    std::vector<std::uint8_t> covered(n, 0);
    std::vector<std::uint8_t> chosen(n, 0);
    std::size_t remaining = n;
    std::size_t size = 0;
    while (remaining > 0) {
      node_id best_v = graph::invalid_node;
      std::size_t best_span = 0;
      for (node_id v = 0; v < n; ++v) {
        if (chosen[v]) continue;
        std::size_t span = covered[v] ? 0 : 1;
        for (const node_id u : g_.neighbors(v)) span += covered[u] ? 0 : 1;
        if (span > best_span) {
          best_span = span;
          best_v = v;
        }
      }
      if (best_v == graph::invalid_node) break;  // cannot happen: span >= 1
      chosen[best_v] = 1;
      ++size;
      g_.for_closed_neighborhood(best_v, [&](node_id u) {
        if (!covered[u]) {
          covered[u] = 1;
          --remaining;
        }
      });
    }
    best_size_ = size;
    best_set_ = chosen;
  }

  /// Number of currently uncovered nodes in N[v].
  [[nodiscard]] std::size_t span_of(node_id v) const {
    std::size_t span = cover_count_[v] == 0 ? 1 : 0;
    for (const node_id u : g_.neighbors(v))
      if (cover_count_[u] == 0) ++span;
    return span;
  }

  void choose(node_id v) {
    in_set_[v] = 1;
    ++current_size_;
    g_.for_closed_neighborhood(v, [&](node_id u) {
      if (cover_count_[u]++ == 0) --uncovered_;
    });
  }

  void unchoose(node_id v) {
    in_set_[v] = 0;
    --current_size_;
    g_.for_closed_neighborhood(v, [&](node_id u) {
      if (--cover_count_[u] == 0) ++uncovered_;
    });
  }

  /// Lower bound on additional dominators needed: a greedy packing of
  /// uncovered nodes with pairwise disjoint closed neighborhoods (each
  /// needs its own dominator), refined with a span-based covering bound.
  [[nodiscard]] std::size_t lower_bound() {
    const std::size_t n = g_.node_count();
    // Disjoint-closed-neighborhood packing.
    scratch_marked_.assign(n, 0);
    std::size_t packing = 0;
    std::size_t max_span = 1;
    for (node_id v = 0; v < n; ++v) {
      if (cover_count_[v] != 0 || scratch_marked_[v] != 0) continue;
      // v is unmarked, i.e. at distance >= 3 from every node already in the
      // packing, so N[v] is disjoint from their closed neighborhoods and v
      // needs a dominator none of them can share.  Mark v's 2-ball so the
      // next accepted node is again at distance >= 3.
      ++packing;
      g_.for_closed_neighborhood(v, [&](node_id u) {
        scratch_marked_[u] = 1;
        for (const node_id w : g_.neighbors(u)) scratch_marked_[w] = 1;
      });
    }
    // Covering bound: every chosen node dominates at most max_span
    // uncovered nodes.
    for (node_id v = 0; v < n; ++v) {
      if (banned_[v] || in_set_[v]) continue;
      max_span = std::max(max_span, span_of(v));
    }
    const std::size_t covering =
        (uncovered_ + max_span - 1) / max_span;
    return std::max(packing, covering);
  }

  void recurse(std::size_t depth) {
    if (exhausted_) return;
    if (++explored_ > budget_) {
      exhausted_ = true;
      return;
    }
    if (uncovered_ == 0) {
      if (current_size_ < best_size_) {
        best_size_ = current_size_;
        best_set_ = in_set_;
      }
      return;
    }
    if (current_size_ + 1 >= best_size_) return;  // need >= 1 more node
    if (current_size_ + lower_bound() >= best_size_) return;

    // Branch vertex: uncovered node with the fewest allowed dominators.
    const std::size_t n = g_.node_count();
    node_id branch = graph::invalid_node;
    std::size_t fewest = std::numeric_limits<std::size_t>::max();
    for (node_id v = 0; v < n; ++v) {
      if (cover_count_[v] != 0) continue;
      std::size_t allowed = banned_[v] ? 0 : 1;
      for (const node_id u : g_.neighbors(v)) allowed += banned_[u] ? 0 : 1;
      if (allowed < fewest) {
        fewest = allowed;
        branch = v;
      }
    }
    if (branch == graph::invalid_node || fewest == 0) return;  // infeasible

    // Candidates: allowed dominators of `branch`, best span first.
    std::vector<node_id> candidates;
    candidates.reserve(fewest);
    if (!banned_[branch]) candidates.push_back(branch);
    for (const node_id u : g_.neighbors(branch))
      if (!banned_[u]) candidates.push_back(u);
    std::sort(candidates.begin(), candidates.end(),
              [&](node_id a, node_id b) { return span_of(a) > span_of(b); });

    // Standard inclusion branching with incremental exclusion: once the
    // subtree where w is chosen has been fully explored, ban w for the
    // remaining branches (all solutions containing w were just covered).
    std::vector<node_id> newly_banned;
    for (const node_id w : candidates) {
      choose(w);
      recurse(depth + 1);
      unchoose(w);
      if (exhausted_) break;
      banned_[w] = 1;
      newly_banned.push_back(w);
    }
    for (const node_id w : newly_banned) banned_[w] = 0;
  }

  const graph::graph& g_;
  std::uint64_t budget_;
  std::uint64_t explored_ = 0;
  bool exhausted_ = false;

  std::vector<std::uint32_t> cover_count_;
  std::vector<std::uint8_t> in_set_;
  std::vector<std::uint8_t> banned_;
  std::vector<std::uint8_t> scratch_marked_;
  std::size_t uncovered_ = 0;
  std::size_t current_size_ = 0;

  std::size_t best_size_ = 0;
  std::vector<std::uint8_t> best_set_;
};

}  // namespace

std::optional<exact_result> solve_mds(const graph::graph& g,
                                      const exact_options& options) {
  if (g.node_count() == 0) return exact_result{};
  bb_search search(g, options.node_budget);
  search.run();
  if (search.exhausted()) return std::nullopt;
  exact_result res;
  res.in_set = search.best_set();
  res.size = search.best_size();
  res.nodes_explored = search.nodes_explored();
  return res;
}

exact_result brute_force_mds(const graph::graph& g) {
  const std::size_t n = g.node_count();
  if (n > 24)
    throw std::invalid_argument("brute_force_mds: n must be <= 24");
  exact_result res;
  if (n == 0) return res;

  std::vector<std::uint32_t> closed(n, 0);
  for (node_id v = 0; v < n; ++v) {
    std::uint32_t mask = 1U << v;
    for (const node_id u : g.neighbors(v)) mask |= 1U << u;
    closed[v] = mask;
  }
  const std::uint32_t full = (1U << n) - 1U;  // n <= 24 < 32

  std::uint32_t best_mask = full;
  std::size_t best_size = n;
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const auto size = static_cast<std::size_t>(std::popcount(mask));
    if (size >= best_size) continue;
    std::uint32_t covered = 0;
    std::uint64_t rest = mask;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      covered |= closed[static_cast<std::size_t>(v)];
    }
    if (covered == full) {
      best_mask = static_cast<std::uint32_t>(mask);
      best_size = size;
    }
    ++res.nodes_explored;
  }

  res.in_set.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v)
    if ((best_mask >> v) & 1U) res.in_set[v] = 1;
  res.size = best_size;
  return res;
}

}  // namespace domset::exact
