/// \file context.hpp
/// \brief The shared execution context every algorithm entry point embeds.
///
/// Before this header existed, every params struct (`lp_approx_params`,
/// `rounding_params`, `pipeline_params`, the baselines) re-declared the
/// same execution knobs -- seed, threads, pool, delivery, message loss --
/// with the same copy-pasted documentation, so each new engine feature
/// cost an eight-file plumbing sweep.  `exec::context` is the single
/// definition: algorithms embed it by composition (`params.exec`),
/// `common::cli_parser::add_exec_flags()` parses it from argv in one call,
/// and `context::engine_config()` hands it to the simulator.  A future
/// engine knob is added here once and becomes available everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/delivery.hpp"
#include "sim/engine_config.hpp"
#include "sim/fault.hpp"
#include "sim/thread_pool.hpp"

namespace domset::exec {

/// Execution knobs shared by every simulator-backed algorithm.
///
/// Only `seed` and `drop_probability` can influence a run's *output*
/// (and `seed` only matters to the randomized algorithms or when message
/// loss is injected); `threads`, `pool` and `delivery` are purely
/// wall-clock knobs -- results and metrics are bit-identical for every
/// setting, a contract enforced by tests/sim_parallel_determinism_test.cpp
/// and documented in docs/threading.md.
struct context {
  /// Global engine seed; node v's private stream is derived from it.
  /// Algorithms 2 and 3 are deterministic, so for them the seed only
  /// matters when message loss is injected.
  std::uint64_t seed = 1;

  /// Message-loss probability (robustness extension; 0 = the paper's
  /// reliable model).
  double drop_probability = 0.0;

  /// Scheduled fault plan (crash/link/burst/dup events; see
  /// sim/fault.hpp).  Null or empty = no injected faults.  Like
  /// drop_probability, faults influence a run's *output* but never its
  /// determinism: the same plan plus the same seed reproduces the run bit
  /// for bit at every thread count and delivery mode.
  std::shared_ptr<const sim::fault_plan> faults;

  /// If nonzero, the engine flags any message whose declared width
  /// exceeds this many bits (run_metrics::congest_violation) -- used to
  /// assert the paper's O(log Delta) message-size claim mechanically.
  std::uint32_t congest_bit_limit = 0;

  /// Simulator worker threads (1 = serial, 0 = one per hardware thread).
  std::size_t threads = 1;

  /// Optional shared worker pool (see sim::engine_config::pool).  Lets
  /// consecutive runs -- pipeline stages, parameter sweeps, epochs of a
  /// dynamic network -- reuse one set of threads instead of building a
  /// pool per run.  A pool carries no algorithm state, so sharing cannot
  /// perturb results.
  std::shared_ptr<sim::thread_pool> pool;

  /// Message-delivery scheme: push (receiver-side slots), pull (sender
  /// lanes + receiver gather), or automatic resolution from degree skew
  /// (see sim::engine_config::delivery and sim/delivery.hpp).
  sim::delivery_mode delivery = sim::delivery_mode::automatic;

  /// Lowers the context into a simulator configuration.  Callers set the
  /// algorithm-specific fields (max_rounds) on the returned value.
  [[nodiscard]] sim::engine_config engine_config() const {
    sim::engine_config cfg;
    cfg.seed = seed;
    cfg.drop_probability = drop_probability;
    cfg.faults = faults;
    cfg.congest_bit_limit = congest_bit_limit;
    cfg.threads = threads;
    cfg.pool = pool;
    cfg.delivery = delivery;
    return cfg;
  }

  /// True when this context injects any unreliability (message loss or a
  /// non-empty fault plan); callers use it to decide whether a run may
  /// legitimately produce a degraded solution.
  [[nodiscard]] bool faulty() const {
    return drop_probability > 0.0 || (faults && !faults->empty());
  }

  /// Returns a copy whose `seed` is replaced (pipelines derive
  /// independent streams per stage without mutating the caller's context).
  [[nodiscard]] context with_seed(std::uint64_t s) const {
    context c = *this;
    c.seed = s;
    return c;
  }

  /// Returns a copy carrying `p` as the shared worker pool.
  [[nodiscard]] context with_pool(std::shared_ptr<sim::thread_pool> p) const {
    context c = *this;
    c.pool = std::move(p);
    return c;
  }

  /// Ensures a shared pool exists when the context requests parallelism:
  /// if `pool` is null and `threads != 1`, builds one sized by `threads`.
  /// Call once before a batch of runs (sweeps, pipelines, epochs) so they
  /// all dispatch on the same workers.  No-op for serial contexts.
  void ensure_shared_pool() {
    if (!pool) pool = sim::thread_pool::make_shared_if_parallel(threads);
  }
};

}  // namespace domset::exec
