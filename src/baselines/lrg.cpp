#include "baselines/lrg.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace domset::baselines {

namespace {

using graph::node_id;

enum lrg_tag : std::uint16_t {
  tag_span = 1,
  tag_max1 = 2,
  tag_candidate = 3,
  tag_support = 4,
  tag_join = 5,
  tag_color = 6,
};

[[nodiscard]] std::uint32_t value_bits(std::uint64_t v) noexcept {
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::bit_width(v)));
}

class lrg_program {
 public:
  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) {
    if (finished_) return;
    switch (ctx.round() % 6) {
      case 0: {  // span
        if (ctx.round() == 0) {
          // Initially everyone is white.
          neighbor_white_.assign(ctx.neighbors().size(), 1);
        } else {
          // Colors announced at the end of the previous phase.
          update_neighbor_colors(ctx, inbox);
        }
        span_ = white_ ? 1 : 0;
        for (const std::uint8_t w : neighbor_white_) span_ += w;
        ctx.broadcast(tag_span, span_, value_bits(span_));
        break;
      }
      case 1: {  // max1
        max1_ = span_;
        for (const sim::message& msg : inbox)
          if (msg.tag == tag_span)
            max1_ = std::max(max1_, static_cast<std::uint32_t>(msg.payload));
        ctx.broadcast(tag_max1, max1_, value_bits(max1_));
        break;
      }
      case 2: {  // max2 + candidacy
        std::uint32_t max2 = max1_;
        for (const sim::message& msg : inbox)
          if (msg.tag == tag_max1)
            max2 = std::max(max2, static_cast<std::uint32_t>(msg.payload));
        if (max2 == 0) {
          // No white node within two hops: this node's part is done.
          finished_ = true;
          return;
        }
        candidate_ = span_ >= 1 && 2 * span_ >= max2;
        if (candidate_) ctx.broadcast(tag_candidate, 1, 1);
        break;
      }
      case 3: {  // support (white nodes only)
        if (white_) {
          std::uint32_t support = candidate_ ? 1 : 0;
          for (const sim::message& msg : inbox)
            if (msg.tag == tag_candidate) ++support;
          ctx.broadcast(tag_support, support, value_bits(support));
          own_support_ = support;
        }
        break;
      }
      case 4: {  // join decision (candidates only)
        joined_now_ = false;
        if (candidate_ && !in_set_) {
          std::vector<std::uint32_t> supports;
          if (white_) supports.push_back(own_support_);
          for (const sim::message& msg : inbox)
            if (msg.tag == tag_support)
              supports.push_back(static_cast<std::uint32_t>(msg.payload));
          if (!supports.empty()) {
            std::sort(supports.begin(), supports.end());
            const std::uint32_t med = supports[(supports.size() - 1) / 2];
            const double p = med == 0 ? 1.0 : 1.0 / static_cast<double>(med);
            if (ctx.random().next_bernoulli(p)) {
              in_set_ = true;
              joined_now_ = true;
            }
          }
        }
        if (joined_now_) ctx.broadcast(tag_join, 1, 1);
        break;
      }
      case 5: {  // color update + announcement
        bool covered_now = in_set_;
        for (const sim::message& msg : inbox)
          if (msg.tag == tag_join) covered_now = true;
        if (covered_now) white_ = false;
        ctx.broadcast(tag_color, white_ ? 0 : 1, 1);
        break;
      }
      default: break;
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool in_set() const { return in_set_; }

 private:
  void update_neighbor_colors(sim::round_context& ctx,
                              std::span<const sim::message> inbox) {
    // Inbox is sorted by sender; neighbors() is sorted too, so walk both.
    const auto nbrs = ctx.neighbors();
    std::size_t idx = 0;
    for (const sim::message& msg : inbox) {
      if (msg.tag != tag_color) continue;
      while (idx < nbrs.size() && nbrs[idx] < msg.from) ++idx;
      if (idx < nbrs.size() && nbrs[idx] == msg.from)
        neighbor_white_[idx] = msg.payload == 0 ? 1 : 0;
    }
  }

  bool white_ = true;
  bool in_set_ = false;
  bool candidate_ = false;
  bool joined_now_ = false;
  bool finished_ = false;
  std::uint32_t span_ = 0;
  std::uint32_t max1_ = 0;
  std::uint32_t own_support_ = 0;
  std::vector<std::uint8_t> neighbor_white_;
};

}  // namespace

lrg_result lrg_mds(const graph::graph& g, const lrg_params& params) {
  const std::size_t n = g.node_count();
  lrg_result result;
  result.in_set.assign(n, 0);
  if (n == 0) return result;

  sim::engine_config cfg = params.exec.engine_config();
  cfg.max_rounds = params.max_rounds;
  sim::typed_engine<lrg_program> engine(g, cfg);
  engine.load([](graph::node_id) { return lrg_program(); });
  result.metrics = engine.run();
  result.phases = (result.metrics.rounds + 5) / 6;

  for (graph::node_id v = 0; v < n; ++v) {
    if (engine.program(v).in_set()) {
      result.in_set[v] = 1;
      ++result.size;
    }
  }
  return result;
}

}  // namespace domset::baselines
