// Wu & Li's marking heuristic (DialM 1999) with Dai-Wu pruning rules 1-2
// -- the constant-round (connected) dominating set algorithm the paper
// cites as [22]: fast, but with no non-trivial approximation guarantee
// (its output can be Theta(n) on graphs with constant-size optima).
//
// Rounds:
//   0: every node announces its neighbor list (one message per entry --
//      the honest CONGEST cost of 2-hop topology collection);
//   1: marking (v is marked iff it has two non-adjacent neighbors);
//      marked bits are exchanged;
//   2: pruning: rule 1 (unmark v if a marked higher-id u has
//      N[v] subseteq N[u]) and rule 2 (unmark v if two adjacent marked
//      neighbors u,w with higher ids have N(v) subseteq N(u) cup N(w)),
//      evaluated against the initial marking; final dominator bits are
//      exchanged;
//   3: orphan detection: nodes with no dominator in N[v] announce
//      themselves (this fix-up covers the cases the marking misses, e.g.
//      complete graphs, and makes the output dominating on every graph);
//   4: each orphan with the highest id among the orphans of its closed
//      neighborhood joins.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace domset::baselines {

struct wu_li_params {
  /// Execution knobs (threads, pool, delivery; the algorithm itself is
  /// deterministic, so the seed only matters under message loss) -- see
  /// exec::context.
  exec::context exec;
};

struct wu_li_result {
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  /// Marked nodes before pruning (diagnostic).
  std::size_t marked_initially = 0;
  /// Nodes added by the orphan fix-up.
  std::size_t orphan_joins = 0;
  sim::run_metrics metrics;
};

[[nodiscard]] wu_li_result wu_li_mds(const graph::graph& g,
                                     const wu_li_params& params = {});

}  // namespace domset::baselines
