#include "baselines/greedy.hpp"

#include <limits>
#include <stdexcept>

namespace domset::baselines {

namespace {

using graph::node_id;

/// Core loop shared by both variants: `score` returns the figure of merit
/// for picking v given its current span (higher is better); nodes with span
/// 0 are never picked.
template <typename ScoreFn>
greedy_result greedy_impl(const graph::graph& g, ScoreFn&& score) {
  const std::size_t n = g.node_count();
  greedy_result res;
  res.in_set.assign(n, 0);

  std::vector<std::uint8_t> covered(n, 0);
  std::size_t remaining = n;
  while (remaining > 0) {
    node_id best = graph::invalid_node;
    double best_score = -std::numeric_limits<double>::infinity();
    for (node_id v = 0; v < n; ++v) {
      if (res.in_set[v]) continue;
      std::size_t span = covered[v] ? 0 : 1;
      for (const node_id u : g.neighbors(v)) span += covered[u] ? 0 : 1;
      if (span == 0) continue;
      const double s = score(v, span);
      if (s > best_score) {  // strict: ties go to the lowest id
        best_score = s;
        best = v;
      }
    }
    if (best == graph::invalid_node)
      throw std::logic_error("greedy_mds: no candidate covers anything");
    res.in_set[best] = 1;
    res.pick_order.push_back(best);
    ++res.size;
    g.for_closed_neighborhood(best, [&](node_id u) {
      if (!covered[u]) {
        covered[u] = 1;
        --remaining;
      }
    });
  }
  return res;
}

}  // namespace

greedy_result greedy_mds(const graph::graph& g) {
  return greedy_impl(
      g, [](node_id, std::size_t span) { return static_cast<double>(span); });
}

greedy_result greedy_weighted_mds(const graph::graph& g,
                                  std::span<const double> cost) {
  if (cost.size() != g.node_count())
    throw std::invalid_argument("greedy_weighted_mds: cost size mismatch");
  for (const double c : cost)
    if (c <= 0.0)
      throw std::invalid_argument("greedy_weighted_mds: costs must be > 0");
  return greedy_impl(g, [&](node_id v, std::size_t span) {
    return static_cast<double>(span) / cost[v];
  });
}

double greedy_ratio_bound(std::uint32_t delta) {
  double h = 0.0;
  for (std::uint32_t i = 1; i <= delta + 1; ++i)
    h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace domset::baselines
