#include "baselines/wu_li.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace domset::baselines {

namespace {

using graph::node_id;

enum wu_li_tag : std::uint16_t {
  tag_nbr = 1,
  tag_marked = 2,
  tag_dominator = 3,
  tag_orphan = 4,
  tag_join = 5,
};

[[nodiscard]] std::uint32_t value_bits(std::uint64_t v) noexcept {
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::bit_width(v)));
}

class wu_li_program {
 public:
  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) {
    if (finished_) return;
    switch (ctx.round()) {
      case 0: {  // announce the neighbor list, one entry per message
        for (const node_id u : ctx.neighbors())
          ctx.broadcast(tag_nbr, u, value_bits(u));
        break;
      }
      case 1: {  // collect 2-hop topology; mark; exchange marked bits
        collect_neighbor_lists(ctx, inbox);
        marked_ = has_two_nonadjacent_neighbors(ctx);
        ctx.broadcast(tag_marked, marked_ ? 1 : 0, 1);
        break;
      }
      case 2: {  // pruning rules against the initial marking
        std::vector<std::uint8_t> nbr_marked(ctx.neighbors().size(), 0);
        fill_bits(ctx, inbox, tag_marked, nbr_marked);
        dominator_ = marked_ && !pruned_by_rule1(ctx, nbr_marked) &&
                     !pruned_by_rule2(ctx, nbr_marked);
        ctx.broadcast(tag_dominator, dominator_ ? 1 : 0, 1);
        break;
      }
      case 3: {  // orphan detection
        bool dominated = dominator_;
        for (const sim::message& msg : inbox)
          if (msg.tag == tag_dominator && msg.payload == 1) dominated = true;
        orphan_ = !dominated;
        if (orphan_) ctx.broadcast(tag_orphan, 1, 1);
        break;
      }
      case 4: {  // highest-id orphan of each closed neighborhood joins
        if (orphan_) {
          bool is_local_max = true;
          for (const sim::message& msg : inbox)
            if (msg.tag == tag_orphan && msg.from > ctx.id())
              is_local_max = false;
          if (is_local_max) {
            orphan_join_ = true;
            ctx.broadcast(tag_join, 1, 1);
          }
        }
        finished_ = true;
        break;
      }
      default:
        finished_ = true;
        break;
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool marked() const { return marked_; }
  [[nodiscard]] bool in_set() const { return dominator_ || orphan_join_; }
  [[nodiscard]] bool orphan_join() const { return orphan_join_; }

 private:
  /// neighbor_lists_[i] = sorted open neighborhood of ctx.neighbors()[i].
  void collect_neighbor_lists(sim::round_context& ctx,
                              std::span<const sim::message> inbox) {
    const auto nbrs = ctx.neighbors();
    neighbor_lists_.assign(nbrs.size(), {});
    for (const sim::message& msg : inbox) {
      if (msg.tag != tag_nbr) continue;
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), msg.from);
      if (it != nbrs.end() && *it == msg.from)
        neighbor_lists_[static_cast<std::size_t>(it - nbrs.begin())]
            .push_back(static_cast<node_id>(msg.payload));
    }
    for (auto& list : neighbor_lists_) std::sort(list.begin(), list.end());
  }

  [[nodiscard]] static bool contains(const std::vector<node_id>& sorted,
                                     node_id v) {
    return std::binary_search(sorted.begin(), sorted.end(), v);
  }

  [[nodiscard]] bool has_two_nonadjacent_neighbors(
      sim::round_context& ctx) const {
    const auto nbrs = ctx.neighbors();
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        if (!contains(neighbor_lists_[i], nbrs[j])) return true;
    return false;
  }

  /// Rule 1: exists marked u in N(v), id(u) > id(v), N[v] subseteq N[u].
  [[nodiscard]] bool pruned_by_rule1(
      sim::round_context& ctx,
      const std::vector<std::uint8_t>& nbr_marked) const {
    const auto nbrs = ctx.neighbors();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const node_id u = nbrs[i];
      if (!nbr_marked[i] || u <= ctx.id()) continue;
      // N[v] subseteq N[u]  <=>  every neighbor of v (other than u) is
      // adjacent to u (v itself is adjacent to u by construction).
      bool covered = true;
      for (const node_id w : nbrs) {
        if (w == u) continue;
        if (!contains(neighbor_lists_[i], w)) {
          covered = false;
          break;
        }
      }
      if (covered) return true;
    }
    return false;
  }

  /// Rule 2: exist adjacent marked u,w in N(v) with higher ids such that
  /// N(v) subseteq N(u) cup N(w).
  [[nodiscard]] bool pruned_by_rule2(
      sim::round_context& ctx,
      const std::vector<std::uint8_t>& nbr_marked) const {
    const auto nbrs = ctx.neighbors();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!nbr_marked[i] || nbrs[i] <= ctx.id()) continue;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!nbr_marked[j] || nbrs[j] <= ctx.id()) continue;
        if (!contains(neighbor_lists_[i], nbrs[j])) continue;  // u-w edge
        bool covered = true;
        for (const node_id t : nbrs) {
          if (t == nbrs[i] || t == nbrs[j]) continue;
          if (!contains(neighbor_lists_[i], t) &&
              !contains(neighbor_lists_[j], t)) {
            covered = false;
            break;
          }
        }
        if (covered) return true;
      }
    }
    return false;
  }

  void fill_bits(sim::round_context& ctx, std::span<const sim::message> inbox,
                 std::uint16_t tag, std::vector<std::uint8_t>& out) const {
    const auto nbrs = ctx.neighbors();
    for (const sim::message& msg : inbox) {
      if (msg.tag != tag) continue;
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), msg.from);
      if (it != nbrs.end() && *it == msg.from)
        out[static_cast<std::size_t>(it - nbrs.begin())] =
            msg.payload != 0 ? 1 : 0;
    }
  }

  std::vector<std::vector<node_id>> neighbor_lists_;
  bool marked_ = false;
  bool dominator_ = false;
  bool orphan_ = false;
  bool orphan_join_ = false;
  bool finished_ = false;
};

}  // namespace

wu_li_result wu_li_mds(const graph::graph& g, const wu_li_params& params) {
  const std::size_t n = g.node_count();
  wu_li_result result;
  result.in_set.assign(n, 0);
  if (n == 0) return result;

  sim::engine_config cfg = params.exec.engine_config();
  cfg.max_rounds = 8;
  sim::typed_engine<wu_li_program> engine(g, cfg);
  engine.load([](graph::node_id) { return wu_li_program(); });
  result.metrics = engine.run();

  for (graph::node_id v = 0; v < n; ++v) {
    const auto& prog = engine.program(v);
    if (prog.in_set()) {
      result.in_set[v] = 1;
      ++result.size;
    }
    if (prog.marked()) ++result.marked_initially;
    if (prog.orphan_join()) ++result.orphan_joins;
  }
  return result;
}

}  // namespace domset::baselines
