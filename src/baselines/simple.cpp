#include "baselines/simple.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "graph/properties.hpp"
#include "lp/lp_mds.hpp"

namespace domset::baselines {

std::vector<std::uint8_t> trivial_all_nodes(const graph::graph& g) {
  return std::vector<std::uint8_t>(g.node_count(), 1);
}

central_lp_rounding_result centralized_lp_rounding(const graph::graph& g,
                                                   std::uint64_t seed) {
  const std::size_t n = g.node_count();
  central_lp_rounding_result res;
  res.in_set.assign(n, 0);
  if (n == 0) return res;

  const auto lp_opt = lp::solve_lp_mds(g);
  if (!lp_opt.has_value())
    throw std::runtime_error("centralized_lp_rounding: simplex did not solve");
  res.lp_value = lp_opt->value;

  const auto d2 = graph::max_degree_2hop(g);
  common::rng gen(seed);
  for (graph::node_id v = 0; v < n; ++v) {
    const double p = std::min(
        1.0, lp_opt->x[v] * std::log(static_cast<double>(d2[v]) + 1.0));
    if (gen.next_bernoulli(p)) res.in_set[v] = 1;
  }
  // Line 5-6 fix-up, applied centrally.
  for (graph::node_id v = 0; v < n; ++v) {
    bool covered = res.in_set[v] != 0;
    if (!covered) {
      for (const graph::node_id u : g.neighbors(v)) {
        if (res.in_set[u] != 0) {
          covered = true;
          break;
        }
      }
    }
    if (!covered) res.in_set[v] = 1;
  }
  res.size = static_cast<std::size_t>(
      std::count(res.in_set.begin(), res.in_set.end(), 1));
  return res;
}

}  // namespace domset::baselines
