#include "baselines/luby_mis.hpp"

#include <bit>
#include <memory>

#include "sim/engine.hpp"

namespace domset::baselines {

namespace {

enum luby_tag : std::uint16_t { tag_priority = 1, tag_join = 2 };

/// Phase = 2 rounds: priorities out, then join decisions out.  Join
/// announcements are consumed at the start of the next phase.
class luby_program {
 public:
  explicit luby_program(std::uint64_t priority_bound)
      : priority_bound_(priority_bound) {}

  void on_round(sim::round_context& ctx,
                std::span<const sim::message> inbox) {
    if (finished_) return;
    if (ctx.round() % 2 == 0) {
      // Consume join announcements from the previous phase.
      for (const sim::message& msg : inbox) {
        if (msg.tag == tag_join) {
          finished_ = true;  // covered by a new MIS neighbor
          return;
        }
      }
      // Draw and announce this phase's priority.
      priority_ = ctx.random().next_below(priority_bound_);
      ctx.broadcast(tag_priority, priority_,
                    sim::bits_for_values(priority_bound_));
    } else {
      // Join iff strictly smaller (priority, id) than every undecided
      // neighbor (only undecided neighbors sent priorities).
      bool local_min = true;
      for (const sim::message& msg : inbox) {
        if (msg.tag != tag_priority) continue;
        if (msg.payload < priority_ ||
            (msg.payload == priority_ && msg.from < ctx.id())) {
          local_min = false;
          break;
        }
      }
      if (local_min) {
        in_set_ = true;
        finished_ = true;
        ctx.broadcast(tag_join, 1, 1);
      }
    }
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool in_set() const { return in_set_; }

 private:
  std::uint64_t priority_bound_;
  std::uint64_t priority_ = 0;
  bool in_set_ = false;
  bool finished_ = false;
};

}  // namespace

luby_result luby_mis(const graph::graph& g, const luby_params& params) {
  const std::size_t n = g.node_count();
  luby_result result;
  result.in_set.assign(n, 0);
  if (n == 0) return result;

  // O(log n)-bit priorities: collisions are broken by id, so n^3 head-room
  // only keeps them rare.
  const std::uint64_t bound =
      n < 2'000'000 ? static_cast<std::uint64_t>(n) * n * n : ~0ULL;

  sim::engine_config cfg = params.exec.engine_config();
  cfg.max_rounds = params.max_rounds;
  sim::typed_engine<luby_program> engine(g, cfg);
  engine.load([bound](graph::node_id) { return luby_program(bound); });
  result.metrics = engine.run();
  result.phases = (result.metrics.rounds + 1) / 2;

  for (graph::node_id v = 0; v < n; ++v) {
    if (engine.program(v).in_set()) {
      result.in_set[v] = 1;
      ++result.size;
    }
  }
  return result;
}

}  // namespace domset::baselines
