// The classical sequential greedy dominating set algorithm
// [Chvatal 79, Johnson 74, Lovasz 75, Slavik 96]: repeatedly pick the node
// covering the most uncovered nodes.  Approximation ratio ln(Delta) + O(1)
// (H_{Delta+1} exactly); the best possible for polynomial algorithms up to
// lower-order terms [Feige 98].  Serves as the paper's quality yardstick
// (Sect. 2) -- it is centralized, so its "rounds" are not comparable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace domset::baselines {

struct greedy_result {
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  /// Nodes in the order greedy picked them.
  std::vector<graph::node_id> pick_order;
};

/// Unweighted greedy (ties broken by lowest node id, so fully
/// deterministic).
[[nodiscard]] greedy_result greedy_mds(const graph::graph& g);

/// Weighted greedy: picks the node minimizing cost per newly covered node.
[[nodiscard]] greedy_result greedy_weighted_mds(const graph::graph& g,
                                                std::span<const double> cost);

/// The greedy guarantee H_{Delta+1} = sum_{i=1}^{Delta+1} 1/i.
[[nodiscard]] double greedy_ratio_bound(std::uint32_t delta);

}  // namespace domset::baselines
