// Trivial and centralized reference baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace domset::baselines {

/// The trivial dominating set V (every node).  The paper's "O(Delta) is
/// trivial" remark: |V| <= (Delta+1)*|DS_OPT|.
[[nodiscard]] std::vector<std::uint8_t> trivial_all_nodes(
    const graph::graph& g);

/// Centralized LP + randomized rounding reference: solves LP_MDS exactly
/// with simplex (alpha = 1) and applies the Algorithm 1 rounding formula
/// centrally.  This is the quality ceiling of the paper's framework (what
/// Algorithm 1 would produce given a perfect fractional solution).
struct central_lp_rounding_result {
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  double lp_value = 0.0;
};
[[nodiscard]] central_lp_rounding_result centralized_lp_rounding(
    const graph::graph& g, std::uint64_t seed);

}  // namespace domset::baselines
