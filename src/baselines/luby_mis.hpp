// Distributed maximal independent set (Luby 1986) as a dominating set
// baseline.
//
// A maximal independent set is always a dominating set (maximality: every
// node outside has a neighbor inside), and Luby's algorithm finds one in
// O(log n) rounds with high probability.  It is the classic "symmetry
// breaking first" alternative to the paper's "LP first, symmetry breaking
// last" approach (see the paper's conclusions) -- but its output can be
// Theta(n) times larger than optimal (e.g. the independent leaves of a
// star), which is exactly the non-guarantee the paper contrasts against.
//
// Round structure per phase (3 rounds):
//   1. every undecided node draws a random priority and announces it;
//   2. local minima join the MIS and announce;
//   3. neighbors of new MIS members retire and announce their retirement
//      (so remaining nodes can maintain their undecided-neighbor lists).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace domset::baselines {

struct luby_params {
  std::size_t max_rounds = 100'000;
  /// Execution knobs (seed for the priority draws, threads, pool,
  /// delivery) -- see exec::context.
  exec::context exec;
};

struct luby_result {
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  /// Completed 3-round phases.
  std::size_t phases = 0;
  sim::run_metrics metrics;
};

/// Runs Luby's MIS algorithm; the result is both independent and
/// dominating.
[[nodiscard]] luby_result luby_mis(const graph::graph& g,
                                   const luby_params& params);

}  // namespace domset::baselines
