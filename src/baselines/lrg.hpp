// Distributed Local Randomized Greedy (LRG) of Jia, Rajaraman and Suel,
// "An Efficient Distributed Algorithm for Constructing Small Dominating
// Sets" (PODC 2001) -- the prior state of the art the paper compares
// against: O(log Delta) expected approximation in O(log n log Delta)
// rounds with high probability.
//
// Faithful-in-spirit reconstruction (documented deviations in DESIGN.md):
// the algorithm proceeds in phases of six synchronous rounds:
//   1. span:      every node announces its span d(v) = |white nodes in N[v]|
//   2. max1:      1-hop maximum of spans
//   3. max2:      2-hop maximum; v is a *candidate* iff d(v) >= 1 and
//                 2*d(v) >= max span within distance 2 (JRS's "within a
//                 factor two of the local maximum" selection); candidates
//                 announce themselves
//   4. support:   every white node u announces s(u) = |candidates in N[u]|
//   5. join:      each candidate joins the dominating set with probability
//                 min(1, 1/median{ s(u) : white u in N[v] }) (JRS's
//                 median-based symmetry breaking); joiners announce
//   6. color:     nodes covered by a joiner turn gray and re-announce
//                 colors for the next phase's span computation.
// A node terminates once no white node remains within distance two of it.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"

namespace domset::baselines {

struct lrg_params {
  std::size_t max_rounds = 200'000;
  /// Execution knobs (seed for the join coins, threads, pool, delivery,
  /// message loss) -- see exec::context.
  exec::context exec;
};

struct lrg_result {
  std::vector<std::uint8_t> in_set;
  std::size_t size = 0;
  /// Completed 6-round phases.
  std::size_t phases = 0;
  sim::run_metrics metrics;
};

[[nodiscard]] lrg_result lrg_mds(const graph::graph& g,
                                 const lrg_params& params);

}  // namespace domset::baselines
