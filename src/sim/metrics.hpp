/// \file metrics.hpp
/// \brief Execution metrics of a simulated run.
//
// Every complexity claim in the paper (rounds = 2k^2 / 4k^2 + O(k),
// O(k^2 * Delta) messages per node, O(log Delta)-bit messages) is asserted
// against these counters in the tests and printed by the benches.
#pragma once

#include <cstdint>

namespace domset::sim {

struct run_metrics {
  /// Rounds executed (a round = one on_round call per node plus delivery).
  std::size_t rounds = 0;

  /// Total messages sent network-wide (a broadcast counts degree
  /// messages).  Counts every send attempt, including messages the loss
  /// adversary later removes -- the sender paid the transmission either
  /// way.  Delivered = messages_sent - messages_dropped.
  std::uint64_t messages_sent = 0;

  /// Sum of declared message sizes (pre-drop, like messages_sent).
  std::uint64_t bits_sent = 0;

  /// Largest single declared message size observed.
  std::uint32_t max_message_bits = 0;

  /// Maximum over nodes of the number of messages that node successfully
  /// delivered into the network.  Drops are excluded (they are accounted
  /// in messages_dropped), so a lossy adversary cannot inflate the
  /// per-node message-complexity claims this counter backs.
  std::uint64_t max_messages_per_node = 0;

  /// Messages removed by the loss adversary: the i.i.d. drop_probability
  /// plus any burst-fault windows (0 in the reliable model).
  std::uint64_t messages_dropped = 0;

  /// Messages removed by *scheduled* faults: sends across a cut link plus
  /// inboxes discarded because their receiver was dark that round.
  /// Disjoint from messages_dropped (no RNG is consumed for these).
  std::uint64_t messages_lost_to_faults = 0;

  /// Extra copies injected by duplication faults (the original delivery is
  /// counted normally; only the adversarial copy lands here).
  std::uint64_t messages_duplicated = 0;

  /// Total node-rounds spent dark: one per node per round it was crashed.
  std::uint64_t node_rounds_down = 0;

  /// Nodes that were dark for at least one round of the run (crash-stop
  /// and crash-recover both count).
  std::uint64_t nodes_crashed = 0;

  /// True if a configured CONGEST bit limit was exceeded by any message.
  bool congest_violation = false;

  /// True if the run stopped because max_rounds was reached before all
  /// node programs reported completion.
  bool hit_round_limit = false;
};

}  // namespace domset::sim
