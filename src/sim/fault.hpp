/// \file fault.hpp
/// \brief Deterministic fault-injection plane for the round engine.
//
// The paper's model is reliable; real networks crash, flap, and burst.
// A `fault_plan` is a *schedule* of adversarial events -- crash-stop and
// crash-recover node failures, per-link outages with optional flapping,
// burst message loss, and message duplication -- applied by the engine in
// its send/delivery phases.  Every decision the plane makes is a pure
// function of (plan, sender, CSR edge position, round) plus per-sender RNG
// streams, so a faulty run stays bit-identical across thread counts and
// delivery modes: the same determinism contract the lossless engine
// already carries (tests/sim_parallel_determinism_test.cpp).
//
// Fault semantics, in engine terms:
//   * node down at round r: skipped by the compute phase (no on_round, no
//     sends, no RNG draws) and its round-r inbox is discarded (counted in
//     run_metrics::messages_lost_to_faults).  A crash-*stop* node (open
//     window) is treated as finished at its crash round so the run can
//     still terminate; a crash-*recover* node resumes on_round when its
//     window closes.  Messages already in flight when a node crashes are
//     delivered to its (live) neighbors -- the radio died, not the ether.
//   * link down at round r: messages sent across it in round r vanish at
//     the sender (both directions), counted in messages_lost_to_faults.
//     No RNG is consumed, so loss on one link never perturbs drop rolls
//     elsewhere.  A link fault naming a non-adjacent pair is a documented
//     no-op: fault specs are swept across graph families that need not all
//     contain the edge.
//   * burst at round r: extra i.i.d. message loss with probability p,
//     combined with the base drop_probability as 1-(1-base)*(1-p), rolled
//     on the per-sender drop streams and counted in messages_dropped.
//   * dup at round r: each delivered message is duplicated with
//     probability p (an extra copy of the same message down the same edge,
//     via the engine's overflow path), rolled on dedicated per-sender dup
//     streams and counted in messages_duplicated.
//
// The textual grammar (see parse_fault_plan) is `+`-separated so a whole
// plan fits in one shell-friendly token and can ride a comma-separated
// bench axis: `crash=7@10+link=0-3@4-9:flap=1/3+burst@5-6:p=0.5`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace domset::sim {

/// An inclusive round interval [first, last]; last == forever leaves the
/// window open (crash-stop, permanent link cuts).
struct fault_window {
  static constexpr std::size_t forever = ~std::size_t{0};

  std::size_t first = 0;
  std::size_t last = forever;

  [[nodiscard]] bool contains(std::size_t round) const noexcept {
    return round >= first && round <= last;
  }
  [[nodiscard]] bool open_ended() const noexcept { return last == forever; }

  friend bool operator==(const fault_window&, const fault_window&) = default;
};

/// Node failure: crash-stop when the window is open-ended, crash-recover
/// otherwise (the node is dark for the window and resumes after it).
struct node_fault {
  graph::node_id node = 0;
  fault_window window;

  [[nodiscard]] bool crash_stop() const noexcept {
    return window.open_ended();
  }
  friend bool operator==(const node_fault&, const node_fault&) = default;
};

/// Link outage between adjacent nodes u and v (both directions).  With
/// flap_period > 0 the link is down only for the first flap_down rounds of
/// every flap_period-round cycle, phase-aligned to window.first.
struct link_fault {
  graph::node_id u = 0;
  graph::node_id v = 0;
  fault_window window;
  std::uint32_t flap_down = 0;    ///< down rounds per cycle (0 = whole window)
  std::uint32_t flap_period = 0;  ///< cycle length (0 = no flapping)

  [[nodiscard]] bool down_at(std::size_t round) const noexcept {
    if (!window.contains(round)) return false;
    if (flap_period == 0) return true;
    return (round - window.first) % flap_period < flap_down;
  }
  friend bool operator==(const link_fault&, const link_fault&) = default;
};

/// Network-wide extra message loss inside the window.
struct burst_fault {
  fault_window window;
  double probability = 1.0;

  friend bool operator==(const burst_fault&, const burst_fault&) = default;
};

/// Network-wide message duplication inside the window.
struct dup_fault {
  fault_window window;
  double probability = 1.0;

  friend bool operator==(const dup_fault&, const dup_fault&) = default;
};

/// A full fault schedule.  Carried on exec::context / sim::engine_config
/// as a shared_ptr<const fault_plan>; null or empty means the reliable
/// model.  `spec` echoes the textual form the plan was parsed from (kept
/// canonical by parse_fault_plan) so results can be keyed by it.
struct fault_plan {
  std::vector<node_fault> node_faults;
  std::vector<link_fault> link_faults;
  std::vector<burst_fault> bursts;
  std::vector<dup_fault> dups;
  std::string spec;

  [[nodiscard]] bool empty() const noexcept {
    return node_faults.empty() && link_faults.empty() && bursts.empty() &&
           dups.empty();
  }
};

/// Parses the fault grammar:
///   spec  := "none" | "" | atom ("+" atom)*
///   atom  := "crash=" node "@" window
///          | "link=" node "-" node "@" window [":flap=" down "/" period]
///          | "burst@" window [":p=" prob]
///          | "dup@" window [":p=" prob]
///   window:= round | round "-" | round "-" round      (inclusive; "r-" = forever)
/// For `crash` a single round means crash-stop (down forever from there);
/// for the other atoms it means that one round only.  Throws
/// std::invalid_argument on malformed input.  The returned plan's `spec`
/// is the canonical re-rendering (to_string round-trips).
[[nodiscard]] fault_plan parse_fault_plan(std::string_view spec);

/// Canonical textual forms of single faults and whole plans (an empty plan
/// renders as "none").  parse_fault_plan(to_string(p)) reproduces p.
[[nodiscard]] std::string to_string(const node_fault& f);
[[nodiscard]] std::string to_string(const link_fault& f);
[[nodiscard]] std::string to_string(const burst_fault& f);
[[nodiscard]] std::string to_string(const dup_fault& f);
[[nodiscard]] std::string to_string(const fault_plan& plan);

/// A fault plan compiled against one graph: link faults resolved to CSR
/// edge positions, per-node/per-sender gates precomputed, so the engine's
/// hot paths pay one flag load when a node or sender is fault-free.
/// Throws std::invalid_argument when a fault names a node outside the
/// graph; non-adjacent link faults are dropped (see fault.hpp preamble).
class compiled_faults {
 public:
  compiled_faults() = default;
  compiled_faults(const graph::graph& g, const fault_plan& plan);

  /// True when any fault was compiled (drives engine bookkeeping setup).
  [[nodiscard]] bool any() const noexcept { return any_; }
  [[nodiscard]] bool any_burst() const noexcept { return !bursts_.empty(); }
  [[nodiscard]] bool any_dup() const noexcept { return !dups_.empty(); }

  /// True iff node v is dark at `round`.
  [[nodiscard]] bool node_down(graph::node_id v, std::size_t round) const {
    if (node_flag_.empty() || !node_flag_[v]) return false;
    for (const node_fault& f : nodes_)
      if (f.node == v && f.window.contains(round)) return true;
    return false;
  }

  /// True iff node v is dark at `round` and never recovers (crash-stop).
  [[nodiscard]] bool permanently_down(graph::node_id v,
                                      std::size_t round) const {
    if (node_flag_.empty() || !node_flag_[v]) return false;
    for (const node_fault& f : nodes_)
      if (f.node == v && f.crash_stop() && f.window.contains(round))
        return true;
    return false;
  }

  /// True iff sends from u at `round` need the per-message path: a link
  /// fault touches one of u's edges, or a burst/dup window is active.
  [[nodiscard]] bool sender_path(graph::node_id u, std::size_t round) const {
    if (!sender_flag_.empty() && sender_flag_[u]) return true;
    return burst_probability(round) > 0.0 || dup_probability(round) > 0.0;
  }

  /// True iff the directed edge at sender-side CSR position `pos` is cut
  /// at `round`.
  [[nodiscard]] bool link_down(std::size_t pos, std::size_t round) const {
    if (links_.empty()) return false;
    // links_ is sorted by position; entries per position are few.
    std::size_t lo = 0, hi = links_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (links_[mid].pos < pos)
        lo = mid + 1;
      else
        hi = mid;
    }
    for (; lo < links_.size() && links_[lo].pos == pos; ++lo)
      if (links_[lo].fault.down_at(round)) return true;
    return false;
  }

  /// Combined probability that an active burst removes a message at
  /// `round` (independent bursts compose as 1 - prod(1 - p)).
  [[nodiscard]] double burst_probability(std::size_t round) const {
    double keep = 1.0;
    for (const burst_fault& f : bursts_)
      if (f.window.contains(round)) keep *= 1.0 - f.probability;
    return 1.0 - keep;
  }

  /// Combined duplication probability at `round`.
  [[nodiscard]] double dup_probability(std::size_t round) const {
    double keep = 1.0;
    for (const dup_fault& f : dups_)
      if (f.window.contains(round)) keep *= 1.0 - f.probability;
    return 1.0 - keep;
  }

 private:
  struct link_entry {
    std::size_t pos = 0;  ///< sender-side CSR position of the cut edge
    link_fault fault;
  };

  bool any_ = false;
  std::vector<node_fault> nodes_;
  std::vector<link_entry> links_;  // sorted by pos, both directions compiled
  std::vector<burst_fault> bursts_;
  std::vector<dup_fault> dups_;
  std::vector<std::uint8_t> node_flag_;    // node has any node_fault
  std::vector<std::uint8_t> sender_flag_;  // node touches any link_fault
};

}  // namespace domset::sim
