#include "sim/partition.hpp"

#include <algorithm>

namespace domset::sim {

std::vector<std::size_t> balanced_ranges(
    std::span<const std::uint64_t> weights, std::size_t parts) {
  const std::size_t n = weights.size();
  parts = std::max<std::size_t>(parts, 1);
  std::vector<std::size_t> bounds(parts + 1, 0);
  bounds[parts] = n;

  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  if (total == 0) {
    // Weightless items: an equal-count split is the only sensible balance.
    const std::size_t chunk = (n + parts - 1) / parts;
    for (std::size_t w = 1; w < parts; ++w)
      bounds[w] = std::min(w * chunk, n);
    return bounds;
  }

  // prefix[i] = weight of [0, i); boundary w lands on the first prefix
  // reaching the ideal share w/parts of the total.  The prefix array is
  // nondecreasing and the targets are nondecreasing, so the bounds are too.
  std::vector<std::uint64_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + weights[i];
  for (std::size_t w = 1; w < parts; ++w) {
    const std::uint64_t target =
        (total * static_cast<std::uint64_t>(w) +
         static_cast<std::uint64_t>(parts) / 2) /
        static_cast<std::uint64_t>(parts);
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    bounds[w] = static_cast<std::size_t>(it - prefix.begin());
  }
  return bounds;
}

std::vector<std::size_t> degree_weighted_ranges(const graph::graph& g,
                                                std::size_t parts) {
  const std::size_t n = g.node_count();
  std::vector<std::uint64_t> weights(n);
  for (graph::node_id v = 0; v < n; ++v)
    weights[v] = static_cast<std::uint64_t>(g.degree(v)) + 1;
  return balanced_ranges(weights, parts);
}

}  // namespace domset::sim
