#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace domset::sim {

std::uint32_t round_context::degree() const noexcept {
  return engine_->network().degree(id_);
}

std::span<const graph::node_id> round_context::neighbors() const noexcept {
  return engine_->network().neighbors(id_);
}

common::rng& round_context::random() noexcept {
  return engine_->node_rngs_[id_];
}

void round_context::send(graph::node_id to, std::uint16_t tag,
                         std::uint64_t payload, std::uint32_t bits) {
  if (!engine_->network().has_edge(id_, to))
    throw std::logic_error("round_context::send: destination not adjacent");
  engine_->enqueue(id_, to, tag, payload, bits);
}

void round_context::broadcast(std::uint16_t tag, std::uint64_t payload,
                              std::uint32_t bits) {
  for (const graph::node_id to : neighbors())
    engine_->enqueue(id_, to, tag, payload, bits);
}

engine::engine(const graph::graph& g, engine_config cfg)
    : graph_(&g),
      config_(cfg),
      adversary_rng_(cfg.seed, 0xAD5E'05A1'DEAD'BEEFULL) {
  const std::size_t n = g.node_count();
  node_rngs_.reserve(n);
  for (graph::node_id v = 0; v < n; ++v) node_rngs_.emplace_back(cfg.seed, v);
  inboxes_.resize(n);
  outboxes_.resize(n);
  per_node_sent_.assign(n, 0);
}

void engine::load(const program_factory& factory) {
  if (!programs_.empty()) throw std::logic_error("engine::load called twice");
  const std::size_t n = graph_->node_count();
  programs_.reserve(n);
  for (graph::node_id v = 0; v < n; ++v) programs_.push_back(factory(v));
}

void engine::set_round_observer(
    std::function<void(std::size_t round)> observer) {
  round_observer_ = std::move(observer);
}

void engine::enqueue(graph::node_id from, graph::node_id to, std::uint16_t tag,
                     std::uint64_t payload, std::uint32_t bits) {
  metrics_.messages_sent += 1;
  metrics_.bits_sent += bits;
  metrics_.max_message_bits = std::max(metrics_.max_message_bits, bits);
  per_node_sent_[from] += 1;
  if (config_.congest_bit_limit != 0 && bits > config_.congest_bit_limit)
    metrics_.congest_violation = true;
  if (config_.drop_probability > 0.0 &&
      adversary_rng_.next_bernoulli(config_.drop_probability)) {
    metrics_.messages_dropped += 1;
    return;
  }
  outboxes_[to].push_back(message{from, payload, bits, tag});
}

run_metrics engine::run() {
  if (programs_.empty())
    throw std::logic_error("engine::run: load() programs first");
  const std::size_t n = graph_->node_count();

  const auto all_finished = [&]() {
    for (graph::node_id v = 0; v < n; ++v)
      if (!programs_[v]->finished()) return false;
    return true;
  };

  bool completed = all_finished();
  for (current_round_ = 0; !completed && current_round_ < config_.max_rounds;
       ++current_round_) {
    // Compute phase: every node processes its inbox and fills outboxes.
    for (graph::node_id v = 0; v < n; ++v) {
      round_context ctx(*this, v, current_round_);
      programs_[v]->on_round(ctx, std::span<const message>(inboxes_[v]));
    }

    // Delivery phase: outboxes become next round's inboxes, sorted by
    // sender for determinism.
    for (graph::node_id v = 0; v < n; ++v) {
      inboxes_[v].clear();
      std::swap(inboxes_[v], outboxes_[v]);
      std::stable_sort(inboxes_[v].begin(), inboxes_[v].end(),
                       [](const message& a, const message& b) {
                         return a.from < b.from;
                       });
    }

    metrics_.rounds = current_round_ + 1;
    if (round_observer_) round_observer_(current_round_);
    completed = all_finished();
  }

  metrics_.hit_round_limit = !completed;
  for (const std::uint64_t sent : per_node_sent_)
    metrics_.max_messages_per_node =
        std::max(metrics_.max_messages_per_node, sent);
  return metrics_;
}

}  // namespace domset::sim
