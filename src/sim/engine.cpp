#include "sim/engine.hpp"

#include "graph/properties.hpp"

namespace domset::sim::detail {

namespace {

/// Salt decorrelating the per-sender drop streams from the node streams.
constexpr std::uint64_t drop_stream_salt = 0xAD5E'05A1'DEAD'BEEFULL;

/// Salt for the per-sender duplication streams (distinct from both the
/// node and drop salts, so enabling duplication never perturbs either).
constexpr std::uint64_t dup_stream_salt = 0xD0B1'E5A1'0B5E'55EDULL;

/// `auto` delivery thresholds: pull engages when the maximum degree is at
/// least this many slots (below it a hub row spans a handful of cache
/// lines and push's scatter is harmless) ...
constexpr std::uint32_t auto_pull_min_degree = 64;
/// ... and at least this multiple of the average degree (the skew that
/// makes hub rows a cross-thread store hotspot and an equal-count
/// partition lopsided).
constexpr double auto_pull_min_skew = 8.0;

}  // namespace

bool mailbox_state::choose_pull(delivery_mode mode, const graph::graph& g,
                                std::size_t workers) {
  switch (mode) {
    case delivery_mode::push:
      return false;
    case delivery_mode::pull:
      return true;
    case delivery_mode::automatic:
      break;
  }
  if (workers <= 1) return false;  // serial: no cross-thread stores to avoid
  const graph::degree_stats_result stats = graph::degree_stats(g);
  return stats.max_degree >= auto_pull_min_degree &&
         stats.skew >= auto_pull_min_skew;
}

mailbox_state::mailbox_state(const graph::graph& g, engine_config cfg)
    : graph_(&g),
      config_(cfg),
      pull_(choose_pull(cfg.delivery, g,
                        resolve_worker_count(cfg.threads, cfg.pool.get(),
                                             g.node_count()))) {
  const std::size_t n = g.node_count();
  const std::size_t directed_edges = 2 * g.edge_count();

  if (cfg.faults && !cfg.faults->empty())
    faults_ = compiled_faults(g, *cfg.faults);

  node_rngs_.reserve(n);
  for (graph::node_id v = 0; v < n; ++v) node_rngs_.emplace_back(cfg.seed, v);
  if (cfg.drop_probability > 0.0 || faults_.any_burst()) {
    const std::uint64_t drop_seed =
        common::derive_seed(cfg.seed, drop_stream_salt);
    drop_rngs_.reserve(n);
    for (graph::node_id v = 0; v < n; ++v) drop_rngs_.emplace_back(drop_seed, v);
  }
  if (faults_.any_dup()) {
    const std::uint64_t dup_seed =
        common::derive_seed(cfg.seed, dup_stream_salt);
    dup_rngs_.reserve(n);
    for (graph::node_id v = 0; v < n; ++v) dup_rngs_.emplace_back(dup_seed, v);
  }

  // Mirror index: visiting receivers v in ascending order visits, for each
  // sender u, u's neighbors in ascending order too (rows are sorted) -- so
  // a per-sender cursor walks u's row exactly once.  O(n + m) total.
  mirror_.resize(directed_edges);
  std::vector<std::size_t> cursor(n, 0);
  for (graph::node_id v = 0; v < n; ++v) {
    const std::size_t lo = g.edge_begin(v);
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::node_id u = nbrs[i];
      mirror_[g.edge_begin(u) + cursor[u]++] = lo + i;
    }
  }

  // Push slots value-initialize to from == invalid_node (all empty); pull
  // lanes default their stamp to ~0, which never equals a delivery round,
  // so everything starts empty -- including for round 0, whose expected
  // stamp is 0.  Only the active mode's array is allocated.
  for (mail_buffer& buf : buffers_) {
    if (pull_)
      buf.lanes.resize(directed_edges);
    else
      buf.slots.resize(directed_edges);
    buf.bcast.resize(n);
    buf.overflow.resize(n);
  }
  scratch_.resize(n);
  last_slotted_round_.assign(n, 0);

  attempted_.assign(n, 0);
  delivered_.assign(n, 0);
  dropped_.assign(n, 0);
  bits_.assign(n, 0);
  max_bits_.assign(n, 0);
  congested_.assign(n, 0);
  fault_lost_.assign(n, 0);
  duplicated_.assign(n, 0);
  down_rounds_.assign(n, 0);
}

void mailbox_state::finish_round(thread_pool* pool, std::size_t workers,
                                 std::span<const std::size_t> bounds) {
  // Group the round's overflow entries by receiver (stably, so send order
  // within a receiver survives): collect_inbox then reads each receiver's
  // entries as one binary-searchable run instead of rescanning a sender's
  // whole list per receiver -- that rescan made a degree-d multi-message
  // round Theta(d^3) where the seed engine was O(d^2 log d).
  mail_buffer& filled = buffers_[out_buf_];
  mail_buffer& drained = buffers_[1 - out_buf_];
  const bool sort_overflow =
      filled.any_overflow.load(std::memory_order_relaxed);
  const bool clear_overflow =
      drained.any_overflow.load(std::memory_order_relaxed);
  const bool clear_bcast = drained.any_bcast.load(std::memory_order_relaxed);

  if (sort_overflow || clear_overflow || clear_bcast) {
    // All three passes are indexed by sender, so one partition of the
    // sender range [0, n) covers them race-free; the pool barrier orders
    // these writes before the next compute phase reads them.
    const std::size_t n = drained.bcast.size();
    const auto retire_range = [&](std::size_t lo, std::size_t hi) {
      if (sort_overflow) {
        for (std::size_t v = lo; v < hi; ++v) {
          auto& list = filled.overflow[v];
          if (list.empty()) continue;
          std::stable_sort(list.begin(), list.end(),
                           [](const mail_buffer::routed_message& a,
                              const mail_buffer::routed_message& b) {
                             return a.to < b.to;
                           });
        }
      }
      if (clear_overflow) {
        for (std::size_t v = lo; v < hi; ++v) drained.overflow[v].clear();
      }
      if (clear_bcast) {
        for (std::size_t v = lo; v < hi; ++v)
          drained.bcast[v].from = graph::invalid_node;
      }
    };
    // A barrier crossing costs more than ~n single-word stores in the
    // small-graph regime, so only fan out when there is real per-sender
    // work (overflow sorting) or enough trivial work to amortize it.
    // The fan-out reuses the run's degree-weighted partition: overflow
    // lists and lanes are per sender, and a hub's overflow is as
    // degree-proportional as its compute work.
    constexpr std::size_t parallel_retire_threshold = 1 << 15;
    if (pool != nullptr && workers > 1 && bounds.size() == workers + 1 &&
        (sort_overflow || n >= parallel_retire_threshold)) {
      pool->run(workers, [&](std::size_t w) {
        retire_range(bounds[w], bounds[w + 1]);
      });
    } else {
      retire_range(0, n);
    }
    if (clear_overflow)
      drained.any_overflow.store(false, std::memory_order_relaxed);
    if (clear_bcast) drained.any_bcast.store(false, std::memory_order_relaxed);
  }
  out_buf_ = 1 - out_buf_;
}

void mailbox_state::aggregate(run_metrics& metrics) const {
  metrics.messages_sent = 0;
  metrics.bits_sent = 0;
  metrics.max_message_bits = 0;
  metrics.max_messages_per_node = 0;
  metrics.messages_dropped = 0;
  metrics.messages_lost_to_faults = 0;
  metrics.messages_duplicated = 0;
  metrics.node_rounds_down = 0;
  metrics.nodes_crashed = 0;
  metrics.congest_violation = false;
  const std::size_t n = attempted_.size();
  for (std::size_t v = 0; v < n; ++v) {
    metrics.messages_sent += attempted_[v];
    metrics.bits_sent += bits_[v];
    metrics.max_message_bits =
        std::max(metrics.max_message_bits, max_bits_[v]);
    metrics.max_messages_per_node =
        std::max(metrics.max_messages_per_node, delivered_[v]);
    metrics.messages_dropped += dropped_[v];
    metrics.messages_lost_to_faults += fault_lost_[v];
    metrics.messages_duplicated += duplicated_[v];
    metrics.node_rounds_down += down_rounds_[v];
    metrics.nodes_crashed += down_rounds_[v] > 0 ? 1 : 0;
    metrics.congest_violation |= congested_[v] != 0;
  }
}

}  // namespace domset::sim::detail
