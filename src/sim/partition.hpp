/// \file partition.hpp
/// \brief Degree-aware contiguous node partitioning for the engine's
/// parallel phases.
///
/// The worker pool splits the node range [0, n) into one contiguous chunk
/// per worker.  Splitting by node *count* is the obvious policy, but the
/// per-node cost of a round is dominated by the node's degree: a receiver
/// gathers degree slots, a sender deposits degree messages.  On skewed
/// graphs (star, power law) an equal-count split hands one worker the hub
/// plus its share of leaves while the others finish early -- the hub's
/// chunk *is* the round.  These helpers split by **degree weight**
/// (weight(v) = degree(v) + 1: inbox traffic plus the constant program
/// step), so every worker's chunk carries roughly the same number of
/// incident edges.
///
/// The partition is a pure function of the graph and the worker count --
/// never of timing -- so it preserves the engine's bit-identical
/// determinism contract (docs/threading.md).  Both the compute phase and
/// the delivery-retirement phase of a run use one shared partition
/// (sim/engine.hpp), computed once per run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace domset::sim {

/// Splits [0, weights.size()) into `parts` contiguous ranges of roughly
/// equal total weight.
///
/// \param weights  per-item nonnegative costs.  The total must fit a
///                 uint64 when multiplied by `parts` (the engine's weights
///                 sum to 2m + n, far below that).
/// \param parts    number of ranges; 0 is treated as 1.
/// \return bounds of size parts + 1 with bounds[0] == 0 and
///         bounds[parts] == weights.size(); range w is
///         [bounds[w], bounds[w+1]) and may be empty (n < parts, or a
///         single heavy item absorbing several targets).
///
/// Boundary w is the first index whose weight prefix reaches
/// round(total * w / parts), so no range exceeds the ideal share by more
/// than one item's weight -- the best any contiguous split can promise.
/// An all-zero total falls back to an equal-count split.
[[nodiscard]] std::vector<std::size_t> balanced_ranges(
    std::span<const std::uint64_t> weights, std::size_t parts);

/// The engine's standard node partition: balanced_ranges over
/// weight(v) = degree(v) + 1.  Shared by the compute phase (on_round per
/// node) and the per-sender delivery retirement in finish_round.
[[nodiscard]] std::vector<std::size_t> degree_weighted_ranges(
    const graph::graph& g, std::size_t parts);

}  // namespace domset::sim
