/// \file engine_config.hpp
/// \brief Configuration of one engine run, split from engine.hpp so that
/// exec::context (and through it every params header) can lower into a
/// sim::engine_config without dragging the full typed_engine template
/// machinery into each translation unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/delivery.hpp"

namespace domset::sim {

class thread_pool;
struct fault_plan;

struct engine_config {
  /// Global seed; node v's stream is derive_seed(seed, v).
  std::uint64_t seed = 1;

  /// Hard stop: runs longer than this flag hit_round_limit.
  std::size_t max_rounds = 1'000'000;

  /// Message loss probability (adversarial extension; the paper's model is
  /// reliable, so this defaults to 0).  Drop decisions are drawn from a
  /// per-sender stream so they are independent of execution order.
  double drop_probability = 0.0;

  /// If nonzero, any message with declared bits above this limit sets
  /// run_metrics::congest_violation.
  std::uint32_t congest_bit_limit = 0;

  /// Scheduled fault plan (sim/fault.hpp): crash windows, link cuts,
  /// bursts, duplication.  Null or empty = the reliable model.  Fault
  /// decisions derive from the plan and per-sender streams only, so runs
  /// stay bit-identical across thread counts and delivery modes.
  std::shared_ptr<const fault_plan> faults;

  /// Worker threads for the parallel phases.  1 = serial; 0 = one per
  /// hardware thread (or the whole injected pool).  Results are
  /// bit-identical for every value.
  std::size_t threads = 1;

  /// Physical message-delivery scheme (see sim/delivery.hpp): push
  /// (receiver-side slots), pull (sender-side lanes + receiver gather), or
  /// automatic (pull iff the run is parallel -- threads != 1 -- and the
  /// degree distribution is hub-skewed).  Results are bit-identical for
  /// every value -- purely a wall-clock knob.
  delivery_mode delivery = delivery_mode::automatic;

  /// Optional externally owned worker pool, shared across runs and
  /// engines.  When set, parallel phases dispatch on it instead of a
  /// run-private pool; `threads` still bounds how many of its workers a
  /// run uses (0 = all of them).  A pool carries no algorithm state, so
  /// sharing cannot perturb results.
  std::shared_ptr<thread_pool> pool;
};

}  // namespace domset::sim
