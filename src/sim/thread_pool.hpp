/// \file thread_pool.hpp
/// \brief Persistent worker pool driving the engine's data-parallel phases.
//
// The round loop of a LOCAL-model simulation dispatches tiny, perfectly
// partitioned work items (compute a node range, retire a mailbox range)
// hundreds of times per run.  Spawning std::threads per round puts a
// clone/exit pair on every round -- tens of microseconds that dwarf the
// useful work exactly where the paper's algorithms live (small graphs,
// O(k^2) or O(log n / eps) rounds).  This pool creates its workers once
// and re-dispatches them per phase through a sense-reversing barrier:
//
//   * arrival: the caller publishes the task and flips the shared epoch
//     word; each worker waits until the epoch differs from its local
//     sense (a bounded spin, then a futex wait via std::atomic::wait).
//     The 64-bit epoch is the counter generalization of the classic
//     one-bit sense -- no reset race, no ABA across phases;
//   * departure: workers count down `remaining_`; the last one wakes the
//     caller, which observed every worker's writes through the
//     release/acquire pair on the countdown.
//
// The caller participates as worker 0, so a pool of size P holds P - 1
// background threads and dispatch is wait-free for serial pools (P == 1).
// A pool owns no algorithm state: it may be shared across consecutive
// engine runs (engine_config::pool) and its reuse cannot perturb results
// -- determinism is owned entirely by the per-node stream design in the
// engine (see docs/threading.md).
//
// run() is an orchestrator-side API: one thread drives the pool at a
// time.  Concurrent run() calls from different threads are not supported
// (the engine's round loop is the single orchestrator).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace domset::sim {

class thread_pool {
 public:
  /// Hard ceiling on pool size, far beyond any plausible hardware.
  /// Results are bit-identical for every worker count, so clamping a
  /// pathological request (--threads=500000) is invisible except in wall
  /// clock -- and it keeps thread creation from hitting OS task limits
  /// and aborting mid-spawn.
  static constexpr std::size_t max_workers = 1024;

  /// Creates min(threads, max_workers) workers (including the calling
  /// thread as worker 0); 0 = one per hardware thread.  Background
  /// threads are created here, once, and live until destruction.
  explicit thread_pool(std::size_t threads = 0);

  /// Stops and joins the background workers.  Must not race a run() call.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Total workers, including the caller; fixed for the pool's lifetime.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// One worker per hardware thread, never less than one.
  [[nodiscard]] static std::size_t hardware_workers() noexcept {
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  /// The shared-pool policy in one place: a pool of `threads` workers
  /// (0 = hardware) for callers that run many engine rounds back to back,
  /// or nullptr when the request resolves to serial execution (engines
  /// then skip pool dispatch entirely).
  [[nodiscard]] static std::shared_ptr<thread_pool> make_shared_if_parallel(
      std::size_t threads);

  /// Type-erased task: fn(ctx, worker).  The function_ref shape (raw
  /// context pointer + function pointer, valid only for the duration of
  /// the run() call) keeps dispatch allocation-free -- a std::function
  /// would heap-box the engine's capture set once per round.
  using task_fn = void (*)(void* ctx, std::size_t worker);

  /// Runs task(w) for every w in [0, min(workers, size())), the caller
  /// executing w == 0, and blocks until all of them returned.  Workers the
  /// task may not use this phase still cross the barrier, so the pool is
  /// quiescent when run() returns.  If any task invocation throws, the
  /// phase still completes on the other workers and the lowest-indexed
  /// exception is rethrown here.
  void run(std::size_t workers, void* ctx, task_fn fn);

  /// Callable-object convenience over the type-erased form; `task` is
  /// borrowed, not copied.
  template <typename F>
  void run(std::size_t workers, F&& task) {
    using fn_t = std::remove_reference_t<F>;
    run(workers,
        const_cast<void*>(static_cast<const void*>(std::addressof(task))),
        [](void* ctx, std::size_t w) { (*static_cast<fn_t*>(ctx))(w); });
  }

  /// Partitions [0, n) into min(workers, size()) equal-count contiguous
  /// chunks and runs task(worker, lo, hi) for each -- a convenience for
  /// callers without a precomputed partition.  (The engine itself now
  /// dispatches over degree-weighted ranges from sim/partition.hpp; this
  /// count split remains for uniform-cost work.)  Clamping before
  /// chunking matters: run() executes at most size() workers, so chunking
  /// by an unclamped count would silently drop the trailing ranges.
  template <typename F>
  void run_chunked(std::size_t n, std::size_t workers, F&& task) {
    const std::size_t parts =
        std::min(std::max<std::size_t>(workers, 1), size_);
    const std::size_t chunk = (n + parts - 1) / parts;
    run(parts, [&](std::size_t w) {
      const std::size_t lo = std::min(w * chunk, n);
      task(w, lo, std::min(lo + chunk, n));
    });
  }

 private:
  void worker_loop(std::size_t index);

  /// Dispatches one barrier phase with `active` task-running workers and
  /// blocks until every background worker checked out.
  void dispatch(std::size_t active, void* ctx, task_fn fn);

  std::size_t size_ = 1;
  std::vector<std::thread> threads_;  // size_ - 1 background workers

  // Phase state, written by the orchestrator strictly before the epoch
  // flip and read by workers strictly after it.
  task_fn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t active_ = 0;
  std::vector<std::exception_ptr> errors_;
  bool stop_ = false;

  /// The barrier's shared sense word; workers hold the value they last
  /// observed and wait for it to change.
  std::atomic<std::uint64_t> epoch_{0};
  /// Background workers still inside the current phase.
  std::atomic<std::size_t> remaining_{0};
};

}  // namespace domset::sim
