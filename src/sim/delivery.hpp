/// \file delivery.hpp
/// \brief Delivery-mode selection for the round engine's message phase.
///
/// The flat CSR mailboxes (sim/engine.hpp) support two physical delivery
/// schemes with identical observable semantics:
///
///   * **push** — a sender scatters each message directly into the
///     receiver-side CSR slot of the edge (through the precomputed mirror
///     index).  Receivers then read their own contiguous slot row.  This
///     is the cheapest layout when degrees are balanced, but on skewed
///     graphs every worker stores into the same hub receiver's row,
///     serializing the round on cross-thread cache-line traffic.
///   * **pull** — a sender writes only its *own* CSR row (a contiguous,
///     sender-local outbox lane) and each receiver's worker walks its
///     in-edge row and gathers the senders' lanes through the mirror
///     index.  All cross-thread traffic becomes loads; no worker ever
///     stores into another node's mailbox region.
///
/// Outputs are bit-identical across modes and thread counts (the inbox a
/// program observes is a pure function of the graph and the messages
/// sent), so the mode is purely a wall-clock knob -- enforced by
/// tests/sim_parallel_determinism_test.cpp.  `automatic` resolves the
/// mode per run: pull iff the run actually executes in parallel (the
/// resolved worker count -- threads knob, pool size, node count -- is
/// greater than 1) and the degree distribution is hub-skewed (see
/// graph::degree_stats and docs/threading.md); serially the two schemes
/// move the same cache lines, so push's compact-in-place inboxes keep a
/// slight edge.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace domset::sim {

/// How messages sent in round r become inboxes of round r+1.
enum class delivery_mode : std::uint8_t {
  /// Senders scatter into receiver-side CSR slots (mirror-indexed writes).
  push,
  /// Senders fill their own outbox row; receivers gather via the mirror.
  pull,
  /// Resolve per run: pull when the degree distribution is skewed
  /// (hub-dominated), push otherwise.
  automatic,
};

/// Canonical spelling of a mode ("push", "pull", "auto").
[[nodiscard]] constexpr const char* to_string(delivery_mode mode) noexcept {
  switch (mode) {
    case delivery_mode::push:
      return "push";
    case delivery_mode::pull:
      return "pull";
    case delivery_mode::automatic:
      return "auto";
  }
  return "?";
}

/// Parses "push" | "pull" | "auto" (the `--delivery` CLI vocabulary).
/// \param name the spelling to parse.
/// \return the parsed mode.
/// \throws std::invalid_argument for any other spelling.
[[nodiscard]] inline delivery_mode parse_delivery_mode(std::string_view name) {
  if (name == "push") return delivery_mode::push;
  if (name == "pull") return delivery_mode::pull;
  if (name == "auto") return delivery_mode::automatic;
  throw std::invalid_argument("delivery mode must be push, pull or auto, got '" +
                              std::string(name) + "'");
}

}  // namespace domset::sim
