// Messages exchanged in the synchronous model.
//
// The engine is payload-agnostic: a message carries an opaque 64-bit
// payload, a small tag for dispatch, and a *declared* size in bits.  The
// declared size is what the CONGEST accounting meters: the paper claims all
// messages are O(log Delta) bits, and every algorithm here declares the
// honest encoded width of what it sends so the claim is checkable.
#pragma once

#include <bit>
#include <cstdint>

#include "graph/graph.hpp"

namespace domset::sim {

struct message {
  graph::node_id from = graph::invalid_node;
  std::uint64_t payload = 0;
  std::uint32_t bits = 0;  // declared wire size
  std::uint16_t tag = 0;   // algorithm-defined dispatch tag
};

/// Number of bits needed to represent values in [0, count-1]
/// (ceil(log2(count)); 1 for count <= 2 so "a message was sent" costs a bit).
[[nodiscard]] constexpr std::uint32_t bits_for_values(
    std::uint64_t count) noexcept {
  if (count <= 2) return 1;
  return static_cast<std::uint32_t>(std::bit_width(count - 1));
}

}  // namespace domset::sim
