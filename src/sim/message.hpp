/// \file message.hpp
/// \brief Messages exchanged in the synchronous model.
//
// The engine is payload-agnostic: a message carries an opaque 64-bit
// payload, a small tag for dispatch, and a *declared* size in bits.  The
// declared size is what the CONGEST accounting meters: the paper claims all
// messages are O(log Delta) bits, and every algorithm here declares the
// honest encoded width of what it sends so the claim is checkable.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "graph/graph.hpp"

namespace domset::sim {

struct message {
  std::uint64_t payload = 0;
  graph::node_id from = graph::invalid_node;
  std::uint16_t bits = 0;  // declared wire size (engine saturates at 65535)
  std::uint16_t tag = 0;   // algorithm-defined dispatch tag
};

// The flat mailbox engine moves messages by plain slot assignment, one
// preallocated slot per directed edge.  The 16-byte layout is load-bearing:
// slots never straddle a cache line, which matters on the scattered
// delivery writes.  Metric accounting keeps the full declared width; only
// the receiver-visible copy saturates (paper messages are O(log Delta)
// bits, nowhere near 65535).
static_assert(sizeof(message) == 16);
static_assert(std::is_trivially_copyable_v<message>);

/// Number of bits needed to represent values in [0, count-1]
/// (ceil(log2(count)); 1 for count <= 2 so "a message was sent" costs a bit).
[[nodiscard]] constexpr std::uint32_t bits_for_values(
    std::uint64_t count) noexcept {
  if (count <= 2) return 1;
  return static_cast<std::uint32_t>(std::bit_width(count - 1));
}

}  // namespace domset::sim
