/// \file engine.hpp
/// \brief Synchronous round-based message-passing engine over flat CSR
/// mailboxes.
//
// This is the paper's communication model, executed faithfully:
//   * computation proceeds in global lockstep rounds;
//   * in each round every node may send messages to its neighbors;
//   * messages sent in round r are delivered at the start of round r+1;
//   * nodes have no identifiers beyond what the algorithm uses and no
//     shared memory -- all coordination flows through messages.
//
// Mailbox layout.  The network graph is CSR; its adjacency array defines a
// stable indexing of the 2m directed edges.  Every directed edge (u -> v)
// owns one preallocated message slot, addressed by the *receiver-side* CSR
// position of u in v's neighbor row.  Because neighbor rows are sorted,
// the slots of receiver v form one contiguous, sorted-by-sender range of
// the flat slot array:
//   * delivery is a buffer swap -- no per-message heap traffic, no
//     per-round stable_sort (the CSR ordering IS the sort);
//   * broadcast walks the sender's row and writes through a precomputed
//     mirror index (sender-side position -> receiver-side slot), paying no
//     adjacency check; send() still validates adjacency via binary search.
// A program that sends more than one message to the same neighbor in one
// round (e.g. topology collection) spills into a per-sender overflow list;
// receivers splice overflow entries after the inline slot, preserving
// per-sender send order.  The overflow path is the exception, not the rule.
//
// Broadcast lane.  A broadcast is one message replicated degree times, and
// the paper's algorithms broadcast every round.  A sender whose round is
// broadcast-only therefore publishes a single entry in a per-sender
// broadcast lane (one sequential store) instead of degree scattered slot
// writes; receivers gather neighbors' lane entries from an n-sized,
// cache-friendly array.  Lane and slots stay mutually exclusive per sender
// per round: mixing in targeted sends, repeat broadcasts, or lossy-run
// per-edge drop rolls demotes the lane entry into the per-edge slots, so
// per-receiver send order is always exact.
//
// Delivery modes.  The slot addressing above describes **push** delivery:
// a sender stores each message at the receiver-side CSR position, so a
// receiver's inbox is its own contiguous row.  On degree-skewed graphs
// this serializes rounds on the hubs: every worker scatters stores into
// the same hub row, and the cache lines of that row ping-pong between
// cores.  **Pull** delivery inverts the ownership: a sender deposits into
// its *own* row (a contiguous sender-local outbox lane, stamped with the
// delivery round so no clearing pass is needed) and each receiver gathers
// its inbox by walking its in-edge row and loading the senders' lanes
// through the mirror index.  Cross-thread traffic becomes read-only;
// nobody stores into another node's mailbox region.  The inbox a program
// observes -- content and sorted-by-sender order -- is identical in both
// modes, so delivery is a pure wall-clock knob (engine_config::delivery;
// `auto` resolves per run from graph::degree_stats).
//
// Parallelism and determinism.  The compute phase and the post-barrier
// delivery work (overflow sorting, lane/overflow retirement) may be
// partitioned across engine_config::threads workers, dispatched on a
// persistent sense-reversing-barrier pool (sim/thread_pool.hpp) that is
// created once per run -- or injected through engine_config::pool and
// shared across runs -- never spawned per round.  Worker ranges are
// degree-weighted (sim/partition.hpp, one partition per run shared by
// both phases), so a hub node costs its worker the same edge budget as a
// million leaves cost theirs.  The schedule is race-free by construction,
// with no locks or atomics on the data path:
//   * node v's program, RNG streams, metric counters, and inbox scratch
//     are touched only by the worker that owns v;
//   * in push mode sender u writes only the slots mirror[p] for p in u's
//     own row, and distinct directed edges map to distinct slots; in pull
//     mode u writes only u's own row, and receivers only *read* foreign
//     rows (of the opposite buffer, sequenced by the phase barrier);
//   * inboxes live in the opposite buffer of outboxes (double buffering),
//     so no slot is read and written in the same phase.
// Node randomness, message-drop decisions, and all metric counters are
// derived per node from the global seed, so a run is bit-reproducible for
// every thread count: serial and parallel executions produce identical
// message sequences, program states, and metrics.
//
// Fault plane.  An engine_config may carry a sim::fault_plan (fault.hpp):
// crash windows make the compute phase skip a node (its inbox is drained
// and discarded by its owner worker, so buffer hygiene is untouched),
// link cuts filter individual deposits at the sender, bursts fold into
// the per-sender drop rolls, and duplication re-deposits a copy through
// the overflow path.  Every fault decision is a pure function of (plan,
// sender, edge position, round) plus the per-sender drop/dup streams --
// never of thread count or delivery mode -- so faulty runs keep the
// bit-reproducibility contract below.
//
// Engines.  typed_engine<Program> stores the per-node programs
// contiguously by value and dispatches on_round statically (no vtable,
// no per-program allocation).  The classic virtual `engine` +
// node_program interface is kept as a thin adapter over it for external
// callers and heterogeneous programs.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/delivery.hpp"
#include "sim/engine_config.hpp"
#include "sim/fault.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"
#include "sim/thread_pool.hpp"

namespace domset::sim {

/// A run's effective worker count: the `threads` knob (0 = the whole
/// injected pool, else one per hardware thread), bounded by the injected
/// pool's size, the pool-size ceiling, and the node count.  One function
/// so the engine's round loop and the auto-delivery heuristic can never
/// disagree about whether a run is serial.
[[nodiscard]] inline std::size_t resolve_worker_count(std::size_t threads,
                                                      const thread_pool* pool,
                                                      std::size_t n) {
  std::size_t requested = threads;
  if (requested == 0)
    requested = pool ? pool->size() : thread_pool::hardware_workers();
  if (pool) requested = std::min(requested, pool->size());
  // Mirror the pool constructor's ceiling so a run-private pool ends up
  // exactly this big (the round loop asserts on that).
  requested = std::min(requested, thread_pool::max_workers);
  return std::min(requested, std::max<std::size_t>(n, 1));
}

namespace detail {

/// One half of the double-buffered mailbox: inline slots (one per directed
/// edge, receiver-side CSR indexed) and the per-sender overflow lists for
/// >1 message per edge per round.  A slot is empty iff its sender field is
/// invalid_node -- deposits always carry a real sender id, so occupancy
/// needs no side array and each message touches exactly one slot.
struct mail_buffer {
  struct routed_message {
    graph::node_id to = graph::invalid_node;
    message msg;
  };

  /// Push mode: one message slot per directed edge at the receiver-side
  /// CSR position (empty in pull mode).
  std::vector<message> slots;

  /// Pull-mode outbox record: the message plus the round in which it must
  /// be delivered.  The record is live for round r iff stamp == r, so
  /// stale lanes need no clearing pass -- their stamp simply never
  /// matches again (receivers cannot clear sender-side state without
  /// reintroducing the cross-thread stores pull exists to remove).  The
  /// Packing message and stamp into one 24-byte record keeps a random
  /// gather access to a single line most of the time (vs. two guaranteed
  /// misses with split stamp/slot arrays) without inflating the
  /// sequential-bandwidth cost hub rows pay; stamp starts at ~0 so round
  /// 0 (expected stamp 0) reads empty.
  struct lane {
    message msg;
    std::uint64_t stamp = ~std::uint64_t{0};
  };
  /// Pull mode: one lane per directed edge at the *sender-side* CSR
  /// position, so a sender's deposits are contiguous stores into its own
  /// row (empty in push mode).
  std::vector<lane> lanes;
  /// Broadcast lane: one entry per sender holding the message it broadcast
  /// this round (sentinel from == invalid_node when unused).  A broadcast
  /// is one message replicated degree times, so in the common case it
  /// costs one sequential store here instead of degree scattered slot
  /// writes; receivers gather it from this n-sized (cache-friendly) array.
  std::vector<message> bcast;
  std::vector<std::vector<routed_message>> overflow;  // per sender
  /// Set (monotonically, relaxed) when any sender overflowed this round;
  /// gates the slow gather path so the common case stays branch-cheap.
  std::atomic<bool> any_overflow{false};
  /// Set (monotonically, relaxed) when any sender used the broadcast lane.
  std::atomic<bool> any_bcast{false};
};

/// All engine state that is independent of the program type.  Shared by
/// typed_engine instantiations and the virtual adapter via round_context.
class mailbox_state {
 public:
  mailbox_state(const graph::graph& g, engine_config cfg);

  mailbox_state(const mailbox_state&) = delete;
  mailbox_state& operator=(const mailbox_state&) = delete;

  [[nodiscard]] const graph::graph& network() const noexcept { return *graph_; }
  [[nodiscard]] common::rng& node_rng(graph::node_id v) noexcept {
    return node_rngs_[v];
  }

  /// True when this run gathers inboxes from sender-side lanes (resolved
  /// once at construction from engine_config::delivery and the graph's
  /// degree skew).
  [[nodiscard]] bool pull_delivery() const noexcept { return pull_; }

  /// The `auto` heuristic in one place: pull pays off when a few hubs
  /// concentrate the delivery traffic -- maximum degree both absolutely
  /// large (below ~64 a hub row fits in a handful of cache lines and
  /// scatter stores are cheap) and a large multiple of the average -- and
  /// the run actually executes in parallel (`workers` is the resolved
  /// count from resolve_worker_count, not the raw threads knob): serially,
  /// push's scatter and pull's gather move the same lines, but across
  /// workers push turns hub rows into cross-thread store hotspots while
  /// pull's foreign traffic is read-only.
  [[nodiscard]] static bool choose_pull(delivery_mode mode,
                                        const graph::graph& g,
                                        std::size_t workers);

  /// Places an already-accounted message into out-buffer slot `q`
  /// (receiver-side CSR position of the edge from -> to).  The innermost
  /// write of the push-mode hot path: one slot store in the common case.
  void place(mail_buffer& out, std::size_t q, graph::node_id to,
             const message& msg) {
    if (out.slots[q].from == graph::invalid_node) {
      out.slots[q] = msg;
    } else {
      out.overflow[msg.from].push_back({to, msg});
      out.any_overflow.store(true, std::memory_order_relaxed);
    }
  }

  /// Pull-mode counterpart of place(): deposits into *sender-side* lane
  /// `p` of the out-buffer, stamped live for round `round + 1`.  A stamp
  /// already at round + 1 means a second message down the same edge this
  /// round: spill to the sender's overflow list, exactly like push.
  void place_pull(mail_buffer& out, std::size_t p, graph::node_id to,
                  const message& msg, std::size_t round) {
    mail_buffer::lane& lane = out.lanes[p];
    if (lane.stamp != round + 1) {
      lane.stamp = round + 1;
      lane.msg = msg;
    } else {
      out.overflow[msg.from].push_back({to, msg});
      out.any_overflow.store(true, std::memory_order_relaxed);
    }
  }

  /// Routes one message down row position `i` of `from` through the
  /// active delivery mode: the receiver-side mirror slot (push) or the
  /// sender's own slot (pull).
  void deposit(mail_buffer& out, graph::node_id from, std::size_t i,
               graph::node_id to, const message& msg, std::size_t round) {
    const std::size_t p = graph_->edge_begin(from) + i;
    if (pull_)
      place_pull(out, p, to, msg, round);
    else
      place(out, mirror_[p], to, msg);
  }

  /// Receiver-visible copy of a declared width (metrics keep the full
  /// value; the message field saturates -- see message.hpp).
  [[nodiscard]] static std::uint16_t wire_bits(std::uint32_t bits) noexcept {
    return static_cast<std::uint16_t>(std::min<std::uint32_t>(bits, 0xFFFF));
  }

  /// Folds one send of `count` equal-width messages into the per-sender
  /// counters; returns true if the per-message path (drop rolls, link
  /// filters, duplication) must run.  The decision depends only on the
  /// config, the fault plan, the sender and the round, so it is identical
  /// in every thread/delivery configuration.
  bool account(graph::node_id from, std::uint64_t count, std::uint32_t bits,
               std::size_t round) {
    attempted_[from] += count;
    bits_[from] += bits * count;
    if (bits > max_bits_[from]) max_bits_[from] = bits;
    if (config_.congest_bit_limit != 0 && bits > config_.congest_bit_limit)
      congested_[from] = 1;
    if (config_.drop_probability > 0.0 ||
        (faults_.any() && faults_.sender_path(from, round)))
      return true;
    delivered_[from] += count;
    return false;
  }

  /// The round's message-loss probability: the base drop_probability
  /// combined with any active burst window (independent losses compose).
  [[nodiscard]] double effective_drop(std::size_t round) const {
    double p = config_.drop_probability;
    if (faults_.any_burst()) {
      const double b = faults_.burst_probability(round);
      if (b > 0.0) p = 1.0 - (1.0 - p) * (1.0 - b);
    }
    return p;
  }

  /// Per-message slow path shared by send() and broadcast(): link-cut
  /// filter (no RNG consumed), drop roll on the per-sender drop stream,
  /// deposit, then a duplication roll on the per-sender dup stream (the
  /// copy re-deposits down the same edge via the overflow machinery).
  void deliver_one(mail_buffer& out, graph::node_id from, std::size_t i,
                   graph::node_id to, const message& msg, std::size_t round,
                   double eff_drop, double dup_p) {
    if (faults_.link_down(graph_->edge_begin(from) + i, round)) {
      fault_lost_[from] += 1;
      return;
    }
    if (eff_drop > 0.0 && drop_rngs_[from].next_bernoulli(eff_drop)) {
      dropped_[from] += 1;
      return;
    }
    delivered_[from] += 1;
    deposit(out, from, i, to, msg, round);
    if (dup_p > 0.0 && dup_rngs_[from].next_bernoulli(dup_p)) {
      duplicated_[from] += 1;
      deposit(out, from, i, to, msg, round);
    }
  }

  /// True iff node v is dark (crashed) at `round`.
  [[nodiscard]] bool node_down(graph::node_id v, std::size_t round) const {
    return faults_.node_down(v, round);
  }

  /// True iff node v crashed at or before `round` and never recovers.
  [[nodiscard]] bool node_crash_stopped(graph::node_id v,
                                        std::size_t round) const {
    return faults_.permanently_down(v, round);
  }

  /// Stands in for on_round when v is dark: drains and discards v's inbox
  /// (the radio is off; losses are counted) while keeping the buffer
  /// hygiene collect/release normally provides.  Only v's owner worker
  /// may call this -- same ownership rule as collect_inbox.
  void skip_down_node(graph::node_id v, std::size_t round) {
    const std::span<const message> inbox = collect_inbox(v, round);
    fault_lost_[v] += inbox.size();
    down_rounds_[v] += 1;
    release_inbox(v, inbox);
  }

  /// Replays an earlier broadcast-lane entry of `from` into its per-edge
  /// slots.  Needed when the sender later mixes in targeted sends or
  /// further broadcasts, so per-receiver send order stays exact.  Callers
  /// must stamp last_slotted_round_ first, so later broadcasts this round
  /// keep using the per-edge path (lane vs. slots stays exclusive).
  void demote_broadcast(graph::node_id from, std::size_t round) {
    mail_buffer& out = buffers_[out_buf_];
    message& pending = out.bcast[from];
    if (pending.from == graph::invalid_node) return;
    const auto nbrs = graph_->neighbors(from);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      deposit(out, from, i, nbrs[i], pending, round);
    pending.from = graph::invalid_node;
  }

  /// Sends one message to every neighbor of `from` -- no adjacency check,
  /// metrics folded once for the whole broadcast.  Fast path: a sender
  /// whose round is broadcast-only (the paper's algorithms, every round)
  /// publishes one broadcast-lane entry.  Mixed rounds, lossy runs, and
  /// rounds where a fault touches this sender (per-edge link filters,
  /// drop rolls, duplication) walk the sender's CSR row through the
  /// mirror index into the per-edge slots.
  void broadcast(graph::node_id from, std::uint16_t tag, std::uint64_t payload,
                 std::uint32_t bits, std::size_t round) {
    const auto nbrs = graph_->neighbors(from);
    if (nbrs.empty()) return;
    mail_buffer& out = buffers_[out_buf_];
    const message msg{payload, from, wire_bits(bits), tag};
    if (!account(from, nbrs.size(), bits, round)) {
      if (last_slotted_round_[from] != round + 1 &&
          out.bcast[from].from == graph::invalid_node) {
        out.bcast[from] = msg;
        out.any_bcast.store(true, std::memory_order_relaxed);
        return;
      }
      last_slotted_round_[from] = round + 1;
      demote_broadcast(from, round);  // repeat broadcast this round
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        deposit(out, from, i, nbrs[i], msg, round);
      return;
    }
    last_slotted_round_[from] = round + 1;
    demote_broadcast(from, round);
    const double eff_drop = effective_drop(round);
    const double dup_p =
        faults_.any_dup() ? faults_.dup_probability(round) : 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      deliver_one(out, from, i, nbrs[i], msg, round, eff_drop, dup_p);
  }

  /// Sends one message to the adjacent node `to` (throws std::logic_error
  /// otherwise -- a node cannot talk past its radio range).
  void send(graph::node_id from, graph::node_id to, std::uint16_t tag,
            std::uint64_t payload, std::uint32_t bits, std::size_t round) {
    const auto nbrs = graph_->neighbors(from);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
    if (it == nbrs.end() || *it != to)
      throw std::logic_error("round_context::send: destination not adjacent");
    last_slotted_round_[from] = round + 1;
    demote_broadcast(from, round);  // keep send order exact across the mix
    const auto i = static_cast<std::size_t>(it - nbrs.begin());
    const message msg{payload, from, wire_bits(bits), tag};
    if (account(from, 1, bits, round)) {
      deliver_one(buffers_[out_buf_], from, i, to, msg, round,
                  effective_drop(round),
                  faults_.any_dup() ? faults_.dup_probability(round) : 0.0);
      return;
    }
    deposit(buffers_[out_buf_], from, i, to, msg, round);
  }

  /// Drains node v's inbox from the in-buffer and returns it as one
  /// contiguous span sorted by sender, for delivery in round `round`.
  /// Push mode: the fast path compacts in place inside v's own slot range
  /// (clearing the consumed slots so the in-buffer can serve as next
  /// round's out-buffer); the overflow path gathers into v's scratch
  /// vector.  Pull mode: always gathers into scratch, reading the
  /// senders' lanes (v's own in-buffer row still holds v's previous-round
  /// *outgoing* messages, which v's neighbors are reading this very
  /// phase).  Only v's owner worker may call this.
  [[nodiscard]] std::span<const message> collect_inbox(graph::node_id v,
                                                       std::size_t round) {
    if (pull_) return collect_inbox_pull(v, round);
    mail_buffer& in = buffers_[1 - out_buf_];
    const std::size_t lo = graph_->edge_begin(v);
    const std::size_t hi = graph_->edge_end(v);
    // Per sender, a round's messages live either in one broadcast-lane
    // entry or in the per-edge slot (+ overflow) chain, never both
    // (demote_broadcast enforces exclusivity), so merging in in-row order
    // yields the sorted-by-sender inbox directly.
    if (!in.any_overflow.load(std::memory_order_relaxed)) {
      std::size_t w = lo;
      if (!in.any_bcast.load(std::memory_order_relaxed)) {
        for (std::size_t q = lo; q < hi; ++q) {
          if (in.slots[q].from == graph::invalid_node) continue;
          if (w != q) {
            in.slots[w] = in.slots[q];
            in.slots[q].from = graph::invalid_node;
          }
          ++w;
        }
      } else {
        // Every q emits at most one message, so the write cursor never
        // overtakes the read cursor and v's own row doubles as the
        // contiguous inbox arena.
        const auto nbrs = graph_->neighbors(v);
        for (std::size_t q = lo; q < hi; ++q) {
          if (in.slots[q].from != graph::invalid_node) {
            if (w != q) {
              in.slots[w] = in.slots[q];
              in.slots[q].from = graph::invalid_node;
            }
            ++w;
          } else {
            const message& b = in.bcast[nbrs[q - lo]];
            if (b.from != graph::invalid_node) in.slots[w++] = b;
          }
        }
      }
      // The compacted prefix [lo, w) stays live until release_inbox(v).
      return {in.slots.data() + lo, w - lo};
    }
    // Overflow round: gather per-sender chains (inline slot, then
    // overflow entries, else broadcast lane) into v's scratch vector --
    // still sorted by sender, send order kept within a sender.  Each
    // sender's overflow list was stable-sorted by receiver at the
    // finish_round barrier, so this receiver's entries are one
    // binary-searchable run (a full scan per receiver would make
    // high-degree multi-message rounds cubic in the degree).
    const auto nbrs = graph_->neighbors(v);
    auto& dst = scratch_[v];
    dst.clear();
    for (std::size_t q = lo; q < hi; ++q) {
      if (in.slots[q].from != graph::invalid_node) {
        dst.push_back(in.slots[q]);
        in.slots[q].from = graph::invalid_node;
        const auto& list = in.overflow[nbrs[q - lo]];
        auto it = std::lower_bound(
            list.begin(), list.end(), v,
            [](const mail_buffer::routed_message& entry, graph::node_id to) {
              return entry.to < to;
            });
        for (; it != list.end() && it->to == v; ++it) dst.push_back(it->msg);
      } else {
        const message& b = in.bcast[nbrs[q - lo]];
        if (b.from != graph::invalid_node) dst.push_back(b);
      }
    }
    return {dst.data(), dst.size()};
  }

  /// Pull-mode inbox gather: walk v's in-edge row and load each sender's
  /// outbox record -- the inline sender-side lane (live iff its stamp
  /// equals this round), the sender's overflow run for v, or the
  /// broadcast-lane entry.  Identical content and sorted-by-sender order
  /// as the push paths (rows are sorted, lane vs. slots is exclusive per
  /// sender), but all foreign state is only *read*: the one store target
  /// is v's own scratch vector.  The lane addresses come from the
  /// sequentially-read mirror row, so the random loads are prefetched a
  /// fixed distance ahead -- the classic gather optimization push's
  /// scatter stores cannot have.
  [[nodiscard]] std::span<const message> collect_inbox_pull(graph::node_id v,
                                                            std::size_t round) {
    mail_buffer& in = buffers_[1 - out_buf_];
    const std::size_t lo = graph_->edge_begin(v);
    const std::size_t hi = graph_->edge_end(v);
    const auto nbrs = graph_->neighbors(v);
    const bool any_bcast = in.any_bcast.load(std::memory_order_relaxed);
    const bool any_overflow = in.any_overflow.load(std::memory_order_relaxed);
    const mail_buffer::lane* lanes = in.lanes.data();
    const std::size_t* mirror = mirror_.data();
    constexpr std::size_t prefetch_distance = 32;
    auto& dst = scratch_[v];
    dst.clear();
    for (std::size_t q = lo; q < hi; ++q) {
      if (q + prefetch_distance < hi)
        __builtin_prefetch(lanes + mirror[q + prefetch_distance]);
      const mail_buffer::lane& lane = lanes[mirror[q]];
      if (lane.stamp == round) {
        dst.push_back(lane.msg);
        if (any_overflow) {
          const auto& list = in.overflow[nbrs[q - lo]];
          auto it = std::lower_bound(
              list.begin(), list.end(), v,
              [](const mail_buffer::routed_message& entry, graph::node_id to) {
                return entry.to < to;
              });
          for (; it != list.end() && it->to == v; ++it) dst.push_back(it->msg);
        }
      } else if (any_bcast) {
        const message& b = in.bcast[nbrs[q - lo]];
        if (b.from != graph::invalid_node) dst.push_back(b);
      }
    }
    return {dst.data(), dst.size()};
  }

  /// Marks v's consumed inbox slots empty again so the in-buffer can serve
  /// as next round's out-buffer.  Must be called after on_round(v) by v's
  /// owner worker (v still owns its in-row for the whole compute phase).
  /// No-op when the inbox was gathered into scratch (the overflow path,
  /// and every pull-mode round -- stamps make stale pull lanes inert
  /// without any clearing, and the slots array is not even allocated, so
  /// the pointer comparison below must not be formed).
  void release_inbox(graph::node_id v, std::span<const message> inbox) {
    if (pull_) return;
    mail_buffer& in = buffers_[1 - out_buf_];
    const std::size_t lo = graph_->edge_begin(v);
    if (inbox.data() != in.slots.data() + lo) return;
    for (std::size_t q = lo; q < lo + inbox.size(); ++q)
      in.slots[q].from = graph::invalid_node;
  }

  /// Post-compute barrier work: retire the drained in-buffer (slot states
  /// were already cleared by collect_inbox in push mode and are stamp-inert
  /// in pull mode; overflow lists are cleared here if any were used) and
  /// swap it in as next round's out-buffer.  The per-sender passes
  /// (overflow sort, lane/overflow retirement) partition across `workers`
  /// pool workers when a pool is supplied, along the run's degree-weighted
  /// `bounds` (size workers + 1; may be empty when serial); every pass
  /// touches only sender-indexed state, so disjoint sender ranges are
  /// race-free.
  void finish_round(thread_pool* pool, std::size_t workers,
                    std::span<const std::size_t> bounds);

  /// Folds the per-node counters into the global metrics (message/bit
  /// totals, maxima, drop counts, congestion flag).  Deterministic fixed
  /// fold order, so serial and parallel runs agree bit for bit.
  void aggregate(run_metrics& metrics) const;

 private:
  const graph::graph* graph_;
  engine_config config_;
  /// Resolved delivery scheme for this run (see choose_pull).
  bool pull_ = false;

  /// mirror_[p] for sender-side CSR position p of edge (u -> v) is the
  /// receiver-side position of u in v's row: the flat slot address.
  std::vector<std::size_t> mirror_;
  mail_buffer buffers_[2];
  int out_buf_ = 0;

  /// The run's fault plan compiled against the graph (empty = reliable).
  compiled_faults faults_;

  std::vector<common::rng> node_rngs_;
  /// Populated iff drop_probability > 0 or the plan has burst windows.
  std::vector<common::rng> drop_rngs_;
  /// Populated iff the plan has duplication windows (own salt, so dup
  /// rolls never perturb the drop stream).
  std::vector<common::rng> dup_rngs_;
  std::vector<std::vector<message>> scratch_;  // per-receiver overflow gather
  /// round + 1 of each sender's most recent per-edge slot use (targeted
  /// send, demotion, or repeat broadcast); gates the broadcast fast path
  /// so lane vs. slots stays exclusive and send order survives mixed
  /// rounds.
  std::vector<std::size_t> last_slotted_round_;

  // Per-node metric counters, indexed by sender.  attempted_ counts every
  // send (the paper's message accounting); delivered_ excludes drops and
  // feeds max_messages_per_node.
  std::vector<std::uint64_t> attempted_;
  std::vector<std::uint64_t> delivered_;
  std::vector<std::uint64_t> dropped_;
  std::vector<std::uint64_t> bits_;
  std::vector<std::uint32_t> max_bits_;
  std::vector<std::uint8_t> congested_;
  // Fault-plane counters.  fault_lost_[x] mixes x's sender-side link
  // losses and x's receiver-side dark-round inbox discards; both are
  // written inside x's own compute slot, so the single array stays
  // race-free under the ownership schedule.
  std::vector<std::uint64_t> fault_lost_;
  std::vector<std::uint64_t> duplicated_;
  std::vector<std::uint64_t> down_rounds_;
};

}  // namespace detail

/// Per-round API surface a node program sees.  A context is only valid for
/// the duration of the on_round call it is passed to.
class round_context {
 public:
  /// This node's identifier.
  [[nodiscard]] graph::node_id id() const noexcept { return id_; }

  /// Current round number (0-based).
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// This node's degree in the network graph.
  [[nodiscard]] std::uint32_t degree() const noexcept {
    return state_->network().degree(id_);
  }

  /// Sorted ids of this node's neighbors.
  [[nodiscard]] std::span<const graph::node_id> neighbors() const noexcept {
    return state_->network().neighbors(id_);
  }

  /// This node's private random stream (deterministic per global seed).
  [[nodiscard]] common::rng& random() noexcept {
    return state_->node_rng(id_);
  }

  /// Sends one message to neighbor `to` (must be adjacent; violations throw
  /// std::logic_error).
  void send(graph::node_id to, std::uint16_t tag, std::uint64_t payload,
            std::uint32_t bits) {
    state_->send(id_, to, tag, payload, bits, round_);
  }

  /// Sends the same message to every neighbor (counts degree() messages,
  /// matching the paper's message accounting).
  void broadcast(std::uint16_t tag, std::uint64_t payload,
                 std::uint32_t bits) {
    state_->broadcast(id_, tag, payload, bits, round_);
  }

 private:
  template <typename Program>
  friend class typed_engine;

  round_context(detail::mailbox_state& state, graph::node_id id,
                std::size_t round) noexcept
      : state_(&state), id_(id), round_(round) {}

  detail::mailbox_state* state_;
  graph::node_id id_;
  std::size_t round_;
};

/// A distributed algorithm, from one node's point of view, behind a
/// virtual interface.  Used with the type-erased `engine`; programs run
/// through typed_engine need no base class, only the same two members.
class node_program {
 public:
  virtual ~node_program() = default;

  /// Invoked once per round with the messages addressed to this node that
  /// were sent in the previous round (sorted by sender id; multiple
  /// messages from one sender stay in send order).  Round 0 has an empty
  /// inbox.
  virtual void on_round(round_context& ctx, std::span<const message> inbox) = 0;

  /// True once this node's part of the algorithm has terminated.  Must be
  /// monotone: once finished, a program stays finished (the engine counts
  /// finish transitions instead of rescanning all nodes).  A finished node
  /// keeps receiving on_round calls until the global run ends (real
  /// devices stay powered on); implementations must make post-completion
  /// calls no-ops.
  [[nodiscard]] virtual bool finished() const = 0;
};

/// Owns one `Program` value per node (contiguous, no vtable dispatch) and
/// drives rounds to completion.  `Program` must provide
/// `void on_round(round_context&, std::span<const message>)` and
/// `bool finished() const` (monotone).
template <typename Program>
class typed_engine {
 public:
  typed_engine(const graph::graph& g, engine_config cfg)
      : state_(g, cfg),
        max_rounds_(cfg.max_rounds),
        threads_(cfg.threads),
        shared_pool_(std::move(cfg.pool)) {}

  /// Instantiates one program per node via `factory(v) -> Program`.  Must
  /// be called exactly once before run().
  template <typename Factory>
  void load(Factory&& factory) {
    if (loaded_) throw std::logic_error("engine::load called twice");
    const std::size_t n = state_.network().node_count();
    programs_.reserve(n);
    for (graph::node_id v = 0; v < n; ++v) programs_.push_back(factory(v));
    finished_flag_.assign(n, 0);
    for (graph::node_id v = 0; v < n; ++v) {
      if (std::as_const(programs_[v]).finished()) {
        finished_flag_[v] = 1;
        ++finished_count_;
      }
    }
    loaded_ = true;
  }

  /// Observer invoked after every completed round (post-delivery); used by
  /// invariant monitors in the tests.
  void set_round_observer(std::function<void(std::size_t round)> observer) {
    round_observer_ = std::move(observer);
  }

  /// Executes rounds until every program reports finished() or the round
  /// limit is hit.  Returns the metrics of the run.
  run_metrics run() {
    if (!loaded_) throw std::logic_error("engine::run: load() programs first");
    const std::size_t n = programs_.size();
    // Worker-count decision, hoisted to run start (it used to be re-derived
    // every round): resolve the threads knob against the injected pool and
    // n once, then hold it fixed for the whole run.
    const std::size_t workers = resolve_workers(n);
    thread_pool* pool = nullptr;
    std::unique_ptr<thread_pool> owned;
    if (workers > 1) {
      if (shared_pool_) {
        pool = shared_pool_.get();
      } else {
        owned = std::make_unique<thread_pool>(workers);
        pool = owned.get();
      }
    }
    finished_scratch_.assign(workers, 0);
    // One degree-weighted partition per run, shared by the compute and
    // delivery phases: chunk w owns nodes [bounds[w], bounds[w+1]), sized
    // so every chunk carries about the same number of incident edges (a
    // count-balanced split would hand the hub's worker the whole round on
    // skewed graphs).  Pure function of graph x workers, so determinism
    // is untouched.
    partition_bounds_.clear();
    if (workers > 1) partition_bounds_ = degree_weighted_ranges(state_.network(), workers);
    bool completed = finished_count_ == n;
    for (std::size_t round = 0; !completed && round < max_rounds_; ++round) {
      // The worker count was decided once above and must stay within the
      // pool for the whole run -- every per-worker structure (scratch
      // tallies, chunk partitions) was sized against it.
      assert(!pool || workers <= pool->size());
      finished_count_ += compute_phase(round, pool, workers);
      state_.finish_round(pool, workers, partition_bounds_);
      metrics_.rounds = round + 1;
      if (round_observer_) round_observer_(round);
      completed = finished_count_ == n;
    }
    metrics_.hit_round_limit = !completed;
    state_.aggregate(metrics_);
    return metrics_;
  }

  /// Access to a node's program (valid after load()).
  [[nodiscard]] Program& program(graph::node_id v) { return programs_[v]; }
  [[nodiscard]] const Program& program(graph::node_id v) const {
    return programs_[v];
  }

  [[nodiscard]] const graph::graph& network() const noexcept {
    return state_.network();
  }

  /// Metrics of the run.  `rounds` and the limit flag are live during the
  /// run; the message/bit counters are folded from the per-node tallies
  /// when run() returns (folding them every round would put an O(n) pass
  /// back into the loop the flat layout just removed).
  [[nodiscard]] const run_metrics& metrics() const noexcept { return metrics_; }

 private:
  /// Runs on_round for nodes [lo, hi); returns how many finished this
  /// round.  Touches only state owned by those nodes, so disjoint ranges
  /// are safe to run concurrently.
  std::size_t compute_range(std::size_t round, graph::node_id lo,
                            graph::node_id hi) {
    std::size_t newly_finished = 0;
    for (graph::node_id v = lo; v < hi; ++v) {
      if (state_.node_down(v, round)) {
        // Dark node: no on_round, no sends, no RNG draws; the inbox is
        // discarded (and counted) by skip_down_node.  A crash-*stop* node
        // will never compute again, so it is treated as finished at its
        // crash round -- its silence, not its cooperation, is what the
        // surviving nodes observe.  Crash-recover nodes resume later and
        // finish (or hit the round limit) on their own.
        state_.skip_down_node(v, round);
        if (!finished_flag_[v] && state_.node_crash_stopped(v, round)) {
          finished_flag_[v] = 1;
          ++newly_finished;
        }
        continue;
      }
      const std::span<const message> inbox = state_.collect_inbox(v, round);
      round_context ctx(state_, v, round);
      programs_[v].on_round(ctx, inbox);
      state_.release_inbox(v, inbox);
      if (!finished_flag_[v] && std::as_const(programs_[v]).finished()) {
        finished_flag_[v] = 1;
        ++newly_finished;
      }
    }
    return newly_finished;
  }

  /// The run's worker count, decided once per run (see run()) through the
  /// shared resolve_worker_count policy -- the same resolution the
  /// auto-delivery heuristic saw at mailbox construction.
  [[nodiscard]] std::size_t resolve_workers(std::size_t n) const {
    return resolve_worker_count(threads_, shared_pool_.get(), n);
  }

  /// Dispatches the round's compute phase on the pool (allocation-free:
  /// the per-worker finished tallies live in a run-scoped scratch array,
  /// the node ranges in the run's degree-weighted partition) and returns
  /// how many programs finished this round.
  std::size_t compute_phase(std::size_t round, thread_pool* pool,
                            std::size_t workers) {
    const std::size_t n = programs_.size();
    if (pool == nullptr || workers <= 1)
      return compute_range(round, 0, static_cast<graph::node_id>(n));

    pool->run(workers, [&](std::size_t w) {
      finished_scratch_[w] = compute_range(
          round, static_cast<graph::node_id>(partition_bounds_[w]),
          static_cast<graph::node_id>(partition_bounds_[w + 1]));
    });
    std::size_t total = 0;
    for (std::size_t w = 0; w < workers; ++w) total += finished_scratch_[w];
    return total;
  }

  detail::mailbox_state state_;
  std::size_t max_rounds_;
  std::size_t threads_;
  std::shared_ptr<thread_pool> shared_pool_;
  std::vector<std::size_t> finished_scratch_;  // per-worker finish tallies
  /// Degree-weighted node ranges of the run (workers + 1 bounds; empty
  /// when serial), shared by compute and delivery dispatch.
  std::vector<std::size_t> partition_bounds_;
  std::vector<Program> programs_;
  std::vector<std::uint8_t> finished_flag_;
  std::size_t finished_count_ = 0;
  bool loaded_ = false;
  run_metrics metrics_;
  std::function<void(std::size_t)> round_observer_;
};

/// Type-erased engine over heap-allocated node_program instances -- the
/// pre-flat-mailbox API, kept as a thin adapter over typed_engine so
/// existing callers and heterogeneous programs keep working.
class engine {
 public:
  using program_factory =
      std::function<std::unique_ptr<node_program>(graph::node_id)>;

  engine(const graph::graph& g, engine_config cfg) : core_(g, cfg) {}

  /// Instantiates one program per node via `factory`.  Must be called
  /// exactly once before run().
  void load(const program_factory& factory) {
    core_.load([&](graph::node_id v) { return poly_program{factory(v)}; });
  }

  void set_round_observer(std::function<void(std::size_t round)> observer) {
    core_.set_round_observer(std::move(observer));
  }

  run_metrics run() { return core_.run(); }

  /// Typed access to a node's program (valid after load()).  The caller
  /// asserts the concrete type; used by algorithm runners to read results.
  template <typename Program>
  [[nodiscard]] Program& program_as(graph::node_id v) {
    return static_cast<Program&>(*core_.program(v).impl);
  }

  [[nodiscard]] const graph::graph& network() const noexcept {
    return core_.network();
  }
  [[nodiscard]] const run_metrics& metrics() const noexcept {
    return core_.metrics();
  }

 private:
  struct poly_program {
    std::unique_ptr<node_program> impl;
    void on_round(round_context& ctx, std::span<const message> inbox) {
      impl->on_round(ctx, inbox);
    }
    [[nodiscard]] bool finished() const { return impl->finished(); }
  };

  typed_engine<poly_program> core_;
};

}  // namespace domset::sim
