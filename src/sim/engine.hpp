// Synchronous round-based message-passing engine.
//
// This is the paper's communication model, executed faithfully:
//   * computation proceeds in global lockstep rounds;
//   * in each round every node may send one message to each neighbor;
//   * messages sent in round r are delivered at the start of round r+1;
//   * nodes have no identifiers beyond what the algorithm uses and no
//     shared memory -- all coordination flows through messages.
//
// Determinism: given (graph, seed, programs) a run is bit-reproducible.
// Each node draws randomness from its own stream derived from the global
// seed, and message delivery order within an inbox is sorted by sender id.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"

namespace domset::sim {

class engine;

/// Per-round API surface a node program sees.  A context is only valid for
/// the duration of the on_round call it is passed to.
class round_context {
 public:
  /// This node's identifier.
  [[nodiscard]] graph::node_id id() const noexcept { return id_; }

  /// Current round number (0-based).
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// This node's degree in the network graph.
  [[nodiscard]] std::uint32_t degree() const noexcept;

  /// Sorted ids of this node's neighbors.
  [[nodiscard]] std::span<const graph::node_id> neighbors() const noexcept;

  /// This node's private random stream (deterministic per global seed).
  [[nodiscard]] common::rng& random() noexcept;

  /// Sends one message to neighbor `to` (must be adjacent; violations throw
  /// std::logic_error -- a node cannot talk past its radio range).
  void send(graph::node_id to, std::uint16_t tag, std::uint64_t payload,
            std::uint32_t bits);

  /// Sends the same message to every neighbor (counts degree() messages,
  /// matching the paper's message accounting).
  void broadcast(std::uint16_t tag, std::uint64_t payload, std::uint32_t bits);

 private:
  friend class engine;
  round_context(engine& eng, graph::node_id id, std::size_t round) noexcept
      : engine_(&eng), id_(id), round_(round) {}

  engine* engine_;
  graph::node_id id_;
  std::size_t round_;
};

/// A distributed algorithm, from one node's point of view.  The engine owns
/// one instance per node.
class node_program {
 public:
  virtual ~node_program() = default;

  /// Invoked once per round with the messages addressed to this node that
  /// were sent in the previous round (sorted by sender id).  Round 0 has an
  /// empty inbox.
  virtual void on_round(round_context& ctx, std::span<const message> inbox) = 0;

  /// True once this node's part of the algorithm has terminated.  The
  /// engine stops when every node is finished.  A finished node keeps
  /// receiving on_round calls until the global run ends (real devices stay
  /// powered on); implementations must make post-completion calls no-ops.
  [[nodiscard]] virtual bool finished() const = 0;
};

struct engine_config {
  /// Global seed; node v's stream is derive_seed(seed, v).
  std::uint64_t seed = 1;

  /// Hard stop: runs longer than this flag hit_round_limit.
  std::size_t max_rounds = 1'000'000;

  /// Message loss probability (adversarial extension; the paper's model is
  /// reliable, so this defaults to 0).
  double drop_probability = 0.0;

  /// If nonzero, any message with declared bits above this limit sets
  /// run_metrics::congest_violation.
  std::uint32_t congest_bit_limit = 0;
};

/// Owns the node programs and drives rounds to completion.
class engine {
 public:
  using program_factory =
      std::function<std::unique_ptr<node_program>(graph::node_id)>;

  engine(const graph::graph& g, engine_config cfg);

  /// Instantiates one program per node via `factory`.  Must be called
  /// exactly once before run().
  void load(const program_factory& factory);

  /// Observer invoked after every completed round (post-delivery); used by
  /// invariant monitors in the tests.
  void set_round_observer(std::function<void(std::size_t round)> observer);

  /// Executes rounds until every program reports finished() or the round
  /// limit is hit.  Returns the metrics of the run.
  run_metrics run();

  /// Typed access to a node's program (valid after load()).  The caller
  /// asserts the concrete type; used by algorithm runners to read results.
  template <typename Program>
  [[nodiscard]] Program& program_as(graph::node_id v) {
    return static_cast<Program&>(*programs_[v]);
  }

  [[nodiscard]] const graph::graph& network() const noexcept { return *graph_; }
  [[nodiscard]] const run_metrics& metrics() const noexcept { return metrics_; }

 private:
  friend class round_context;

  void enqueue(graph::node_id from, graph::node_id to, std::uint16_t tag,
               std::uint64_t payload, std::uint32_t bits);

  const graph::graph* graph_;
  engine_config config_;
  std::vector<std::unique_ptr<node_program>> programs_;
  std::vector<common::rng> node_rngs_;
  common::rng adversary_rng_;

  // Double-buffered mailboxes: inboxes_[v] holds messages delivered this
  // round; outboxes_[v] accumulates messages sent this round for delivery
  // next round.
  std::vector<std::vector<message>> inboxes_;
  std::vector<std::vector<message>> outboxes_;
  std::vector<std::uint64_t> per_node_sent_;
  run_metrics metrics_;
  std::function<void(std::size_t)> round_observer_;
  std::size_t current_round_ = 0;
};

}  // namespace domset::sim
