#include "sim/thread_pool.hpp"

namespace domset::sim {

namespace {

/// Bounded spin before parking on the futex: a round dispatch on a warm
/// pool is shorter than a sleep/wake cycle, so give the epoch flip a brief
/// window to land while the worker still owns a core.
constexpr int spin_iterations = 1 << 12;

}  // namespace

thread_pool::thread_pool(std::size_t threads)
    : size_(std::min(threads != 0 ? threads : hardware_workers(),
                     max_workers)) {
  errors_.resize(size_);
  threads_.reserve(size_ - 1);
  try {
    for (std::size_t w = 1; w < size_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  } catch (...) {
    // Thread-resource exhaustion mid-spawn: unwind the workers that did
    // start, or their joinable destructors would std::terminate instead
    // of letting the caller catch the std::system_error.
    stop_ = true;
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread& t : threads_) t.join();
    throw;
  }
}

std::shared_ptr<thread_pool> thread_pool::make_shared_if_parallel(
    std::size_t threads) {
  const std::size_t workers = threads != 0 ? threads : hardware_workers();
  if (workers <= 1) return nullptr;
  return std::make_shared<thread_pool>(workers);
}

thread_pool::~thread_pool() {
  if (threads_.empty()) return;
  stop_ = true;
  remaining_.store(threads_.size(), std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void thread_pool::worker_loop(std::size_t index) {
  std::uint64_t sense = 0;
  for (;;) {
    // Sense-reversing arrival: wait for the shared epoch to differ from
    // the locally held sense.  Spin first (relaxed loads; the acquire
    // fence is the load below), then park.
    for (int i = 0; i < spin_iterations; ++i) {
      if (epoch_.load(std::memory_order_relaxed) != sense) break;
    }
    while (epoch_.load(std::memory_order_acquire) == sense)
      epoch_.wait(sense, std::memory_order_acquire);
    sense = epoch_.load(std::memory_order_acquire);

    if (stop_) return;
    if (index < active_) {
      try {
        fn_(ctx_, index);
      } catch (...) {
        errors_[index] = std::current_exception();
      }
    }
    // Departure: the release decrement publishes this worker's writes to
    // the orchestrator's acquire load in dispatch().
    if (remaining_.fetch_sub(1, std::memory_order_release) == 1)
      remaining_.notify_one();
  }
}

void thread_pool::dispatch(std::size_t active, void* ctx, task_fn fn) {
  fn_ = fn;
  ctx_ = ctx;
  active_ = active;
  remaining_.store(threads_.size(), std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  try {
    fn(ctx, 0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }

  for (int i = 0; i < spin_iterations; ++i) {
    if (remaining_.load(std::memory_order_relaxed) == 0) break;
  }
  std::size_t left;
  while ((left = remaining_.load(std::memory_order_acquire)) != 0)
    remaining_.wait(left, std::memory_order_acquire);
  fn_ = nullptr;
  ctx_ = nullptr;
}

void thread_pool::run(std::size_t workers, void* ctx, task_fn fn) {
  const std::size_t active = std::min(workers, size_);
  if (active <= 1 || threads_.empty()) {
    // Serial fast path: no barrier crossing, exceptions propagate raw.
    if (active >= 1) fn(ctx, 0);
    return;
  }
  dispatch(active, ctx, fn);
  for (std::size_t w = 0; w < active; ++w) {
    if (errors_[w]) {
      const std::exception_ptr err = errors_[w];
      for (std::size_t i = w; i < active; ++i) errors_[i] = nullptr;
      std::rethrow_exception(err);
    }
  }
}

}  // namespace domset::sim
