#include "sim/fault.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace domset::sim {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, std::string_view why) {
  throw std::invalid_argument("fault spec '" + std::string(spec) +
                              "': " + std::string(why));
}

std::size_t parse_number(std::string_view spec, std::string_view& rest,
                         std::string_view what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (ec != std::errc{} || ptr == rest.data())
    bad_spec(spec, "expected " + std::string(what));
  rest.remove_prefix(static_cast<std::size_t>(ptr - rest.data()));
  return value;
}

double parse_probability(std::string_view spec, std::string_view& rest) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (ec != std::errc{} || ptr == rest.data())
    bad_spec(spec, "expected a probability");
  if (value < 0.0 || value > 1.0)
    bad_spec(spec, "probability must be in [0, 1]");
  rest.remove_prefix(static_cast<std::size_t>(ptr - rest.data()));
  return value;
}

bool consume(std::string_view& rest, std::string_view prefix) {
  if (!rest.starts_with(prefix)) return false;
  rest.remove_prefix(prefix.size());
  return true;
}

/// window := round | round "-" | round "-" round
fault_window parse_window(std::string_view spec, std::string_view& rest,
                          bool single_means_forever) {
  fault_window w;
  w.first = parse_number(spec, rest, "a round number");
  if (consume(rest, "-")) {
    if (rest.empty() || !(rest.front() >= '0' && rest.front() <= '9'))
      w.last = fault_window::forever;
    else
      w.last = parse_number(spec, rest, "a round number");
  } else {
    w.last = single_means_forever ? fault_window::forever : w.first;
  }
  if (!w.open_ended() && w.last < w.first)
    bad_spec(spec, "window ends before it starts");
  return w;
}

void render_window(std::string& out, const fault_window& w,
                   bool single_means_forever) {
  out += std::to_string(w.first);
  if (w.open_ended()) {
    if (!single_means_forever) out += '-';
    return;
  }
  if (w.last != w.first || single_means_forever) {
    out += '-';
    out += std::to_string(w.last);
  }
}

std::string render_probability(double p) {
  // Probabilities enter through the same parser, so a plain round-trip
  // via shortest-representation formatting is exact.
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, p);
  return ec == std::errc{} ? std::string(buf, ptr) : std::to_string(p);
}

}  // namespace

fault_plan parse_fault_plan(std::string_view spec) {
  fault_plan plan;
  if (spec.empty() || spec == "none") {
    plan.spec = "none";
    return plan;
  }
  std::string_view rest = spec;
  while (true) {
    if (consume(rest, "crash=")) {
      node_fault f;
      f.node = static_cast<graph::node_id>(
          parse_number(spec, rest, "a node id after crash="));
      if (!consume(rest, "@")) bad_spec(spec, "expected '@' after crash node");
      f.window = parse_window(spec, rest, /*single_means_forever=*/true);
      plan.node_faults.push_back(f);
    } else if (consume(rest, "link=")) {
      link_fault f;
      f.u = static_cast<graph::node_id>(
          parse_number(spec, rest, "a node id after link="));
      if (!consume(rest, "-")) bad_spec(spec, "expected '-' between link ends");
      f.v = static_cast<graph::node_id>(
          parse_number(spec, rest, "the link's second node id"));
      if (f.u == f.v) bad_spec(spec, "link endpoints must differ");
      if (!consume(rest, "@")) bad_spec(spec, "expected '@' after link ends");
      f.window = parse_window(spec, rest, /*single_means_forever=*/false);
      if (consume(rest, ":flap=")) {
        f.flap_down = static_cast<std::uint32_t>(
            parse_number(spec, rest, "flap down-rounds"));
        if (!consume(rest, "/")) bad_spec(spec, "expected flap=<down>/<period>");
        f.flap_period = static_cast<std::uint32_t>(
            parse_number(spec, rest, "a flap period"));
        if (f.flap_period == 0) bad_spec(spec, "flap period must be positive");
        if (f.flap_down > f.flap_period)
          bad_spec(spec, "flap down-rounds exceed the period");
      }
      plan.link_faults.push_back(f);
    } else if (consume(rest, "burst@")) {
      burst_fault f;
      f.window = parse_window(spec, rest, /*single_means_forever=*/false);
      if (consume(rest, ":p=")) f.probability = parse_probability(spec, rest);
      plan.bursts.push_back(f);
    } else if (consume(rest, "dup@")) {
      dup_fault f;
      f.window = parse_window(spec, rest, /*single_means_forever=*/false);
      if (consume(rest, ":p=")) f.probability = parse_probability(spec, rest);
      plan.dups.push_back(f);
    } else {
      bad_spec(spec, "expected crash=, link=, burst@ or dup@");
    }
    if (rest.empty()) break;
    if (!consume(rest, "+")) bad_spec(spec, "expected '+' between faults");
    if (rest.empty()) bad_spec(spec, "trailing '+'");
  }
  plan.spec = to_string(plan);
  return plan;
}

std::string to_string(const node_fault& f) {
  std::string out = "crash=" + std::to_string(f.node) + "@";
  render_window(out, f.window, /*single_means_forever=*/true);
  return out;
}

std::string to_string(const link_fault& f) {
  std::string out = "link=" + std::to_string(f.u) + "-" + std::to_string(f.v) +
                    "@";
  render_window(out, f.window, /*single_means_forever=*/false);
  if (f.flap_period != 0)
    out += ":flap=" + std::to_string(f.flap_down) + "/" +
           std::to_string(f.flap_period);
  return out;
}

std::string to_string(const burst_fault& f) {
  std::string out = "burst@";
  render_window(out, f.window, /*single_means_forever=*/false);
  if (f.probability != 1.0) out += ":p=" + render_probability(f.probability);
  return out;
}

std::string to_string(const dup_fault& f) {
  std::string out = "dup@";
  render_window(out, f.window, /*single_means_forever=*/false);
  if (f.probability != 1.0) out += ":p=" + render_probability(f.probability);
  return out;
}

std::string to_string(const fault_plan& plan) {
  if (plan.empty()) return "none";
  std::string out;
  const auto append = [&out](std::string atom) {
    if (!out.empty()) out += '+';
    out += atom;
  };
  for (const node_fault& f : plan.node_faults) append(to_string(f));
  for (const link_fault& f : plan.link_faults) append(to_string(f));
  for (const burst_fault& f : plan.bursts) append(to_string(f));
  for (const dup_fault& f : plan.dups) append(to_string(f));
  return out;
}

compiled_faults::compiled_faults(const graph::graph& g,
                                 const fault_plan& plan) {
  const std::size_t n = g.node_count();
  const auto check_node = [&](graph::node_id v, const char* what) {
    if (v >= n)
      throw std::invalid_argument(
          std::string("fault plan: ") + what + " node " + std::to_string(v) +
          " out of range for a " + std::to_string(n) + "-node graph");
  };

  for (const node_fault& f : plan.node_faults) {
    check_node(f.node, "crash");
    if (node_flag_.empty()) node_flag_.assign(n, 0);
    node_flag_[f.node] = 1;
    nodes_.push_back(f);
  }

  for (const link_fault& f : plan.link_faults) {
    check_node(f.u, "link");
    check_node(f.v, "link");
    // Resolve the edge to its two sender-side CSR positions; absent edges
    // are documented no-ops (fault specs are swept across graph families).
    const auto position_of = [&](graph::node_id from,
                                 graph::node_id to) -> std::size_t {
      const auto nbrs = g.neighbors(from);
      const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
      if (it == nbrs.end() || *it != to) return fault_window::forever;
      return g.edge_begin(from) +
             static_cast<std::size_t>(it - nbrs.begin());
    };
    const std::size_t uv = position_of(f.u, f.v);
    if (uv == fault_window::forever) continue;  // non-adjacent: no-op
    const std::size_t vu = position_of(f.v, f.u);
    if (sender_flag_.empty()) sender_flag_.assign(n, 0);
    sender_flag_[f.u] = 1;
    sender_flag_[f.v] = 1;
    links_.push_back({uv, f});
    links_.push_back({vu, f});
  }
  std::sort(links_.begin(), links_.end(),
            [](const link_entry& a, const link_entry& b) {
              return a.pos < b.pos;
            });

  for (const burst_fault& f : plan.bursts) {
    if (f.probability > 0.0) bursts_.push_back(f);
  }
  for (const dup_fault& f : plan.dups) {
    if (f.probability > 0.0) dups_.push_back(f);
  }

  any_ = !nodes_.empty() || !links_.empty() || !bursts_.empty() ||
         !dups_.empty();
}

}  // namespace domset::sim
