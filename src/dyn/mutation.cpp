#include "dyn/mutation.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace domset::dyn {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, std::string_view why) {
  throw std::invalid_argument("mutation '" + std::string(spec) +
                              "': " + std::string(why));
}

graph::node_id parse_node(std::string_view spec, std::string_view& rest,
                          std::string_view what) {
  graph::node_id value = 0;
  const auto [ptr, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (ec != std::errc{} || ptr == rest.data())
    bad_spec(spec, "expected " + std::string(what));
  rest.remove_prefix(static_cast<std::size_t>(ptr - rest.data()));
  return value;
}

bool consume(std::string_view& rest, std::string_view prefix) {
  if (!rest.starts_with(prefix)) return false;
  rest.remove_prefix(prefix.size());
  return true;
}

/// One atom from the head of `rest`; `spec` is the full text for errors.
mutation parse_atom(std::string_view spec, std::string_view& rest) {
  mutation m;
  if (consume(rest, "add=")) {
    m.kind = mutation_kind::add_edge;
  } else if (consume(rest, "del=")) {
    m.kind = mutation_kind::del_edge;
  } else if (consume(rest, "addnode=")) {
    m.kind = mutation_kind::add_node;
  } else if (consume(rest, "delnode=")) {
    m.kind = mutation_kind::del_node;
  } else {
    bad_spec(spec, "expected add=, del=, addnode= or delnode=");
  }

  if (m.kind == mutation_kind::add_node || m.kind == mutation_kind::del_node) {
    m.u = parse_node(spec, rest, "a node id");
    m.v = m.u;
    return m;
  }
  m.u = parse_node(spec, rest, "the edge's first node id");
  if (!consume(rest, "-")) bad_spec(spec, "expected '-' between edge ends");
  m.v = parse_node(spec, rest, "the edge's second node id");
  if (m.u == m.v) bad_spec(spec, "edge endpoints must differ");
  if (m.u > m.v) std::swap(m.u, m.v);  // canonical small-large order
  return m;
}

}  // namespace

std::string to_string(const mutation& m) {
  switch (m.kind) {
    case mutation_kind::add_edge:
      return "add=" + std::to_string(m.u) + "-" + std::to_string(m.v);
    case mutation_kind::del_edge:
      return "del=" + std::to_string(m.u) + "-" + std::to_string(m.v);
    case mutation_kind::add_node: return "addnode=" + std::to_string(m.u);
    case mutation_kind::del_node: return "delnode=" + std::to_string(m.u);
  }
  return "";
}

std::string to_string(std::span<const mutation> batch) {
  std::string out;
  for (const mutation& m : batch) {
    if (!out.empty()) out += '+';
    out += to_string(m);
  }
  return out;
}

mutation parse_mutation(std::string_view spec) {
  std::string_view rest = spec;
  const mutation m = parse_atom(spec, rest);
  if (!rest.empty())
    bad_spec(spec, "trailing characters '" + std::string(rest) + "'");
  return m;
}

std::vector<mutation> parse_mutation_list(std::string_view spec) {
  std::vector<mutation> batch;
  if (spec.empty()) return batch;
  std::string_view rest = spec;
  while (true) {
    batch.push_back(parse_atom(spec, rest));
    if (rest.empty()) break;
    if (!consume(rest, "+")) bad_spec(spec, "expected '+' between mutations");
    if (rest.empty()) bad_spec(spec, "trailing '+'");
  }
  return batch;
}

std::vector<mutation> parse_mutation_log(std::string_view text) {
  std::vector<mutation> log;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
      line.remove_prefix(1);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.remove_suffix(1);
    if (line.empty()) continue;

    try {
      log.push_back(parse_mutation(line));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("mutation log line " +
                                  std::to_string(line_no) + ": " + e.what());
    }
  }
  return log;
}

std::vector<mutation> load_mutation_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("cannot open mutation log '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_mutation_log(buffer.str());
}

}  // namespace domset::dyn
