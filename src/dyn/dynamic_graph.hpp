/// \file dynamic_graph.hpp
/// \brief Mutable overlay over the immutable CSR, with epoch snapshots.
//
// `dynamic_graph` holds a resident instance as base CSR + per-node delta
// adjacency.  Mutations accumulate in a *pending* batch that is invisible
// to every query until `commit()` seals it as the next epoch -- snapshot
// isolation: a reader iterating the committed adjacency mid-batch sees a
// consistent graph no matter how many mutations have been applied on top.
//
// Three levels of state:
//   * base CSR       -- the last materialized snapshot (rebase point),
//   * committed delta -- per-node sorted added/removed lists vs the base,
//                        folded in by previous commits,
//   * pending delta  -- the open batch, relative to the committed view.
//
// `view()` exposes the committed adjacency as a `core::adjacency_view`
// without materializing anything, so the repair machinery's dirty-ball
// BFS and subgraph extraction run straight off the overlay.  `snapshot()`
// materializes the committed state into a real CSR (O(n+m)), *rebases*
// the overlay onto it (deltas fold into the new base), and returns it;
// returned graphs share storage, so old epoch snapshots stay valid and
// cheap to hold.  Commits also rebase automatically once the delta grows
// past a fraction of the base, keeping overlay queries near CSR speed on
// long mutation streams.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/repair.hpp"
#include "dyn/mutation.hpp"
#include "graph/graph.hpp"

namespace domset::dyn {

/// What `commit()` sealed: the new epoch number, the batch itself, and
/// the sorted-unique ids whose closed neighborhood the batch altered
/// (edge endpoints; a deleted node plus its ex-neighbors; a new node).
struct commit_result {
  std::uint64_t epoch = 0;
  std::vector<mutation> mutations;
  std::vector<graph::node_id> touched;
};

class dynamic_graph {
 public:
  explicit dynamic_graph(graph::graph base);

  // ---- committed state: the query surface --------------------------
  /// Number of committed epochs (0 right after construction).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t node_count() const { return committed_n_; }
  [[nodiscard]] std::size_t edge_count() const { return committed_m_; }
  [[nodiscard]] std::size_t degree(graph::node_id v) const;
  [[nodiscard]] bool has_edge(graph::node_id u, graph::node_id v) const;
  /// Committed neighbors of `v` in ascending order.
  [[nodiscard]] std::vector<graph::node_id> neighbors(graph::node_id v) const;
  /// The committed adjacency as a repair-compatible view -- no CSR
  /// materialization.  Live: reflects the committed state at use time,
  /// so don't hold one across a commit.
  [[nodiscard]] core::adjacency_view view() const;
  /// Materializes (and rebases onto) the committed snapshot.  O(n+m)
  /// when deltas are pending, O(1) afterwards; the returned graph shares
  /// storage and survives later commits.
  [[nodiscard]] graph::graph snapshot();
  /// The CSR the overlay currently sits on (advances on rebase/snapshot;
  /// never newer than the committed state).  The workload generator
  /// samples deletion slots and hub bias from it.
  [[nodiscard]] const graph::graph& rebase_point() const { return base_; }

  // ---- the open batch ----------------------------------------------
  /// Applies one mutation to the pending batch.  Throws
  /// std::invalid_argument when the mutation is inconsistent with the
  /// pending state (duplicate edge, missing edge, out-of-range node,
  /// addnode id gap).
  void apply(const mutation& m);
  [[nodiscard]] std::size_t pending_mutations() const {
    return pending_log_.size();
  }
  /// Node count as the pending batch sees it (committed + addnodes).
  [[nodiscard]] std::size_t live_node_count() const { return live_n_; }
  [[nodiscard]] std::size_t live_edge_count() const { return live_m_; }
  [[nodiscard]] bool live_has_edge(graph::node_id u, graph::node_id v) const;
  [[nodiscard]] std::size_t live_degree(graph::node_id v) const;
  /// Seals the pending batch as the next epoch (legal with an empty
  /// batch: an epoch that changes nothing).
  commit_result commit();

 private:
  [[nodiscard]] bool base_has_edge(graph::node_id u, graph::node_id v) const;
  [[nodiscard]] bool committed_has_edge(graph::node_id u,
                                        graph::node_id v) const;
  /// Committed neighbors with the pending delta applied (sorted).
  [[nodiscard]] std::vector<graph::node_id> live_neighbors(
      graph::node_id v) const;
  /// Records the pending deletion/insertion of {u, v} (both directions).
  void pending_add(graph::node_id u, graph::node_id v);
  void pending_del(graph::node_id u, graph::node_id v);
  /// Folds committed deltas into a fresh base CSR when they exist.
  void rebase();

  graph::graph base_;
  std::uint64_t epoch_ = 0;

  // committed deltas vs base_ (indexed by node, sorted, symmetric)
  std::vector<std::vector<graph::node_id>> added_, removed_;
  std::size_t committed_n_ = 0;
  std::size_t committed_m_ = 0;
  std::size_t delta_entries_ = 0;  ///< directed entries in added_+removed_

  // pending deltas vs the committed view (same representation)
  std::vector<std::vector<graph::node_id>> p_added_, p_removed_;
  std::vector<mutation> pending_log_;
  std::vector<graph::node_id> pending_touched_;
  std::size_t live_n_ = 0;
  std::size_t live_m_ = 0;
};

}  // namespace domset::dyn
