#include "dyn/workload.hpp"

#include <stdexcept>
#include <utility>

namespace domset::dyn {

std::string_view to_string(workload_bias bias) {
  switch (bias) {
    case workload_bias::uniform: return "uniform";
    case workload_bias::hub: return "hub";
  }
  return "uniform";
}

workload_bias parse_workload_bias(std::string_view text) {
  if (text == "uniform") return workload_bias::uniform;
  if (text == "hub") return workload_bias::hub;
  throw std::invalid_argument("workload bias '" + std::string(text) +
                              "': expected uniform or hub");
}

workload::workload(const workload_params& params)
    : params_(params), rng_(params.seed) {
  if (params.p_add < 0 || params.p_del < 0 || params.p_addnode < 0 ||
      params.p_delnode < 0)
    throw std::invalid_argument("workload: negative operation weight");
  sum_ = params.p_add + params.p_del + params.p_addnode + params.p_delnode;
  if (sum_ <= 0.0)
    throw std::invalid_argument("workload: operation weights sum to zero");
}

graph::node_id workload::sample_endpoint(const dynamic_graph& g,
                                         const graph::graph& base) {
  const std::size_t slots = 2 * base.edge_count();
  if (params_.bias == workload_bias::hub && slots > 0) {
    // A node owns deg(v) adjacency slots of the committed snapshot, so a
    // uniform slot lands on v with probability deg(v)/2m: hub-biased.
    const std::size_t s = rng_.next_below(slots);
    graph::node_id lo = 0;
    graph::node_id hi = static_cast<graph::node_id>(base.node_count());
    while (hi - lo > 1) {  // find v with edge_begin(v) <= s < edge_end(v)
      const graph::node_id mid = lo + (hi - lo) / 2;
      if (base.edge_begin(mid) <= s)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }
  return static_cast<graph::node_id>(rng_.next_below(g.live_node_count()));
}

mutation workload::next(const dynamic_graph& g, const graph::graph& base) {
  constexpr int max_tries = 256;
  for (int t = 0; t < max_tries; ++t) {
    const double r = rng_.next_double() * sum_;
    mutation m;
    if (r < params_.p_add) {
      if (g.live_node_count() < 2) continue;
      const graph::node_id u = sample_endpoint(g, base);
      const graph::node_id v = sample_endpoint(g, base);
      if (u == v || g.live_has_edge(u, v)) continue;
      m.kind = mutation_kind::add_edge;
      m.u = std::min(u, v);
      m.v = std::max(u, v);
      return m;
    }
    if (r < params_.p_add + params_.p_del) {
      // Deletions sample a committed adjacency slot (uniform over edges)
      // and re-check against the live view.
      const std::size_t slots = 2 * base.edge_count();
      if (slots == 0) continue;
      const std::size_t s = rng_.next_below(slots);
      graph::node_id lo = 0;
      graph::node_id hi = static_cast<graph::node_id>(base.node_count());
      while (hi - lo > 1) {
        const graph::node_id mid = lo + (hi - lo) / 2;
        if (base.edge_begin(mid) <= s)
          lo = mid;
        else
          hi = mid;
      }
      const graph::node_id u = lo;
      const graph::node_id v = base.neighbors(u)[s - base.edge_begin(u)];
      if (!g.live_has_edge(u, v)) continue;
      m.kind = mutation_kind::del_edge;
      m.u = std::min(u, v);
      m.v = std::max(u, v);
      return m;
    }
    if (r < params_.p_add + params_.p_del + params_.p_addnode) {
      m.kind = mutation_kind::add_node;
      m.u = m.v = static_cast<graph::node_id>(g.live_node_count());
      return m;
    }
    {
      const graph::node_id v = sample_endpoint(g, base);
      if (v >= g.live_node_count() || g.live_degree(v) == 0) continue;
      m.kind = mutation_kind::del_node;
      m.u = m.v = v;
      return m;
    }
  }
  throw std::runtime_error(
      "workload: no valid mutation found after 256 samples (graph "
      "saturated or edgeless)");
}

}  // namespace domset::dyn
