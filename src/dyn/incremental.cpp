#include "dyn/incremental.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/result_json.hpp"
#include "common/rng.hpp"

namespace domset::dyn {

incremental_engine::incremental_engine(graph::graph base,
                                       incremental_params params)
    : dg_(std::move(base)), params_(std::move(params)) {
  solver_ = &api::solver_registry::instance().find(params_.solver);
  if (!solver_->integral_output())
    throw std::invalid_argument("incremental: solver '" + params_.solver +
                                "' is fractional-only (no set to repair)");
  if (params_.radius == 0)
    throw std::invalid_argument("incremental: radius must be >= 1");
  if (params_.full_fraction < 0.0)
    throw std::invalid_argument("incremental: full_fraction must be >= 0");

  api::solve_result initial = run_solver(dg_.snapshot(), 0);
  in_set_ = std::move(initial.in_set);
}

api::solve_result incremental_engine::run_solver(
    const graph::graph& g, std::uint64_t epoch_no) const {
  // One derived seed per epoch: the same epoch re-solves identically no
  // matter how it is reached, and distinct epochs decorrelate.
  const exec::context exec = params_.exec.with_seed(
      common::derive_seed(params_.exec.seed, epoch_no));
  return solver_->solve(g, exec, params_.solver_params);
}

std::size_t incremental_engine::size() const {
  return static_cast<std::size_t>(
      std::count(in_set_.begin(), in_set_.end(), std::uint8_t{1}));
}

std::uint64_t incremental_engine::digest() const {
  api::solve_result tmp;
  tmp.in_set = in_set_;
  return api::solution_digest(tmp);
}

api::solve_result incremental_engine::full_resolve() {
  return run_solver(dg_.snapshot(), dg_.epoch());
}

epoch_report incremental_engine::step(std::span<const mutation> batch) {
  for (const mutation& m : batch) dg_.apply(m);
  return commit_and_repair();
}

epoch_report incremental_engine::commit_and_repair() {
  const commit_result commit = dg_.commit();

  epoch_report report;
  report.epoch = commit.epoch;
  report.mutations = commit.mutations.size();
  report.touched = commit.touched.size();
  report.nodes = dg_.node_count();
  report.edges = dg_.edge_count();

  const std::vector<std::uint8_t> previous = in_set_;
  in_set_.resize(dg_.node_count(), 0);  // addnode arrivals start out of set

  if (!commit.touched.empty()) {
    const core::adjacency_view view = dg_.view();
    const core::dirty_ball ball = core::dirty_region(
        view, commit.touched, params_.radius, params_.frontier_cap);
    report.ball_nodes = ball.size;
    report.capped_nodes = ball.capped;

    const double limit =
        params_.full_fraction * static_cast<double>(dg_.node_count());
    if (static_cast<double>(ball.size) > limit) {
      // Escape hatch: the ball rivals the graph, a global run is cheaper
      // and strictly better-informed.
      report.full_resolve = true;
      api::solve_result fresh = run_solver(dg_.snapshot(), commit.epoch);
      in_set_ = std::move(fresh.in_set);
    } else {
      core::view_subgraph sub = core::extract_subgraph(view, ball.in_ball);
      const api::solve_result local = run_solver(sub.g, commit.epoch);
      if (local.in_set.size() != sub.g.node_count())
        throw std::runtime_error(
            "incremental: subsolver returned a wrong-sized solution");

      // Splice interior decisions only; the boundary shell (depth ==
      // radius) keeps its current status, so nothing outside the ball
      // changes and holes can only appear inside it.
      for (graph::node_id s = 0; s < sub.g.node_count(); ++s) {
        const graph::node_id v = sub.original_id[s];
        if (ball.depth[v] < params_.radius) {
          in_set_[v] = local.in_set[s];
          ++report.interior_nodes;
        }
      }

      // Ball-restricted coverage check (the verify step of the splice).
      std::vector<graph::node_id> holes;
      for (const graph::node_id v : sub.original_id) {
        if (in_set_[v]) continue;
        bool covered = false;
        for (const graph::node_id u : dg_.neighbors(v)) {
          if (in_set_[u]) {
            covered = true;
            break;
          }
        }
        if (!covered) holes.push_back(v);
      }
      report.holes_patched = holes.size();
      if (!holes.empty()) core::greedy_patch(view, holes, in_set_);
    }
  }

  for (std::size_t v = 0; v < in_set_.size(); ++v) {
    const std::uint8_t before = v < previous.size() ? previous[v] : 0;
    report.changed += before != in_set_[v];
  }
  report.size = size();
  report.digest = digest();
  return report;
}

}  // namespace domset::dyn
