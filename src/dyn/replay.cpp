#include "dyn/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "api/result_json.hpp"
#include "common/stats.hpp"
#include "sim/delivery.hpp"
#include "verify/verify.hpp"

namespace domset::dyn {

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, value);
  return buf;
}

}  // namespace

replay_result run_replay(const graph::graph& g, std::string_view graph_family,
                         const replay_spec& spec) {
  if (spec.batch == 0)
    throw std::invalid_argument("replay: batch must be > 0");

  replay_result out;
  out.alg = spec.inc.solver;
  out.params = spec.inc.solver_params;
  out.exec = spec.inc.exec;
  out.graph_family = std::string(graph_family);
  out.nodes = g.node_count();
  out.edges = g.edge_count();
  out.max_degree = g.max_degree();
  out.mutations_label = spec.mutations_label.empty()
                            ? (spec.log.empty()
                                   ? "gen:" + std::string(to_string(spec.gen.bias))
                                   : "file")
                            : spec.mutations_label;
  out.batch = spec.batch;
  out.radius = spec.inc.radius;
  out.full_fraction = spec.inc.full_fraction;
  out.frontier_cap = spec.inc.frontier_cap;
  out.sample_full = spec.sample_full;

  incremental_params ip = spec.inc;
  ip.exec.ensure_shared_pool();

  const clock_type::time_point t_init = clock_type::now();
  incremental_engine engine(g, ip);
  out.summary.initial_solve_ms = ms_since(t_init);
  out.summary.initial_size = engine.size();

  const bool from_file = !spec.log.empty();
  const std::size_t total_epochs =
      from_file ? (spec.log.size() + spec.batch - 1) / spec.batch
                : spec.epochs;
  workload gen(spec.gen);

  std::vector<double> repair_times, full_times;
  for (std::size_t e = 1; e <= total_epochs; ++e) {
    replay_epoch ep;
    const clock_type::time_point t_apply = clock_type::now();
    try {
      if (from_file) {
        const std::size_t lo = (e - 1) * spec.batch;
        const std::size_t hi = std::min(spec.log.size(), lo + spec.batch);
        for (std::size_t i = lo; i < hi; ++i)
          engine.network().apply(spec.log[i]);
      } else {
        for (std::size_t i = 0; i < spec.batch; ++i)
          engine.network().apply(
              gen.next(engine.network(), engine.network().rebase_point()));
      }
    } catch (const std::invalid_argument& err) {
      throw std::invalid_argument("replay epoch " + std::to_string(e) + ": " +
                                  err.what());
    }
    ep.apply_ms = ms_since(t_apply);

    const clock_type::time_point t_repair = clock_type::now();
    ep.report = engine.commit_and_repair();
    ep.repair_ms = ms_since(t_repair);
    repair_times.push_back(ep.repair_ms);
    if (ep.report.full_resolve) ++out.summary.full_resolves;

    if (spec.sample_full > 0 && e % spec.sample_full == 0) {
      const clock_type::time_point t_full = clock_type::now();
      const api::solve_result full = engine.full_resolve();
      ep.full_resolve_ms = ms_since(t_full);
      ep.full_size = full.size;
      ep.sampled = true;
      full_times.push_back(ep.full_resolve_ms);
    }

    // Validity is the contract the splice argument promises; check it
    // against the real materialized graph every epoch and fail loudly.
    const clock_type::time_point t_verify = clock_type::now();
    const graph::graph current = engine.snapshot();
    ep.valid = verify::is_dominating_set(current, engine.solution());
    ep.verify_ms = ms_since(t_verify);
    if (!ep.valid)
      throw std::runtime_error(
          "replay epoch " + std::to_string(e) +
          ": spliced solution failed dominating-set verification");
    out.epochs.push_back(std::move(ep));
  }

  out.summary.epochs = out.epochs.size();
  out.summary.final_size = engine.size();
  out.summary.final_digest = hex64(engine.digest());
  if (!repair_times.empty()) {
    out.summary.median_repair_ms = common::median(repair_times);
    out.summary.p99_repair_ms = common::percentile(repair_times, 99.0);
  }
  if (!full_times.empty()) {
    out.summary.median_full_resolve_ms = common::median(full_times);
    if (out.summary.median_repair_ms > 0.0)
      out.summary.speedup =
          out.summary.median_full_resolve_ms / out.summary.median_repair_ms;
  }
  return out;
}

std::string to_json(const replay_result& result) {
  using api::json_escape;
  using api::json_number;
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"domset-dynamic/1\",\n";
  out += "  \"alg\": \"" + json_escape(result.alg) + "\",\n";
  out += "  \"graph\": {\n";
  out += "    \"family\": \"" + json_escape(result.graph_family) + "\",\n";
  out += "    \"nodes\": " + std::to_string(result.nodes) + ",\n";
  out += "    \"edges\": " + std::to_string(result.edges) + ",\n";
  out += "    \"max_degree\": " + std::to_string(result.max_degree) + "\n";
  out += "  },\n";
  out += "  \"exec\": {\n";
  out += "    \"seed\": " + std::to_string(result.exec.seed) + ",\n";
  out += "    \"threads\": " + std::to_string(result.exec.threads) + ",\n";
  out += "    \"delivery\": \"" +
         json_escape(sim::to_string(result.exec.delivery)) + "\"\n";
  out += "  },\n";
  out += "  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : result.params.entries()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": \"" + json_escape(value) + "\"";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"replay\": {\n";
  out += "    \"mutations\": \"" + json_escape(result.mutations_label) +
         "\",\n";
  out += "    \"batch\": " + std::to_string(result.batch) + ",\n";
  out += "    \"radius\": " + std::to_string(result.radius) + ",\n";
  out += "    \"full_fraction\": " + json_number(result.full_fraction) + ",\n";
  out += "    \"frontier_cap\": " + std::to_string(result.frontier_cap) +
         ",\n";
  out += "    \"sample_full\": " + std::to_string(result.sample_full) + ",\n";
  out += "    \"epochs\": " + std::to_string(result.summary.epochs) + "\n";
  out += "  },\n";

  out += "  \"epochs\": [";
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const replay_epoch& ep = result.epochs[i];
    const epoch_report& r = ep.report;
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"epoch\": " + std::to_string(r.epoch) + ",\n";
    out += "      \"mutations\": " + std::to_string(r.mutations) + ",\n";
    out += "      \"touched\": " + std::to_string(r.touched) + ",\n";
    out += "      \"ball_nodes\": " + std::to_string(r.ball_nodes) + ",\n";
    out += "      \"capped_nodes\": " + std::to_string(r.capped_nodes) + ",\n";
    out += "      \"interior_nodes\": " + std::to_string(r.interior_nodes) +
           ",\n";
    out += std::string("      \"full_resolve\": ") +
           (r.full_resolve ? "true" : "false") + ",\n";
    out += "      \"holes_patched\": " + std::to_string(r.holes_patched) +
           ",\n";
    out += "      \"changed\": " + std::to_string(r.changed) + ",\n";
    out += "      \"size\": " + std::to_string(r.size) + ",\n";
    out += "      \"nodes\": " + std::to_string(r.nodes) + ",\n";
    out += "      \"edges\": " + std::to_string(r.edges) + ",\n";
    out += "      \"digest\": \"" + hex64(r.digest) + "\",\n";
    out += "      \"apply_ms\": " + json_number(ep.apply_ms) + ",\n";
    out += "      \"repair_ms\": " + json_number(ep.repair_ms) + ",\n";
    out += "      \"verify_ms\": " + json_number(ep.verify_ms) + ",\n";
    out += std::string("      \"valid\": ") + (ep.valid ? "true" : "false");
    if (ep.sampled) {
      out += ",\n      \"sampled\": true,\n";
      out += "      \"full_resolve_ms\": " + json_number(ep.full_resolve_ms) +
             ",\n";
      out += "      \"full_size\": " + std::to_string(ep.full_size);
    }
    out += "\n    }";
  }
  out += result.epochs.empty() ? "],\n" : "\n  ],\n";

  const replay_summary& s = result.summary;
  out += "  \"summary\": {\n";
  out += "    \"epochs\": " + std::to_string(s.epochs) + ",\n";
  out += "    \"full_resolves\": " + std::to_string(s.full_resolves) + ",\n";
  out += "    \"initial_size\": " + std::to_string(s.initial_size) + ",\n";
  out += "    \"final_size\": " + std::to_string(s.final_size) + ",\n";
  out += "    \"final_digest\": \"" + json_escape(s.final_digest) + "\",\n";
  out += "    \"initial_solve_ms\": " + json_number(s.initial_solve_ms) +
         ",\n";
  out += "    \"median_repair_ms\": " + json_number(s.median_repair_ms) +
         ",\n";
  out += "    \"p99_repair_ms\": " + json_number(s.p99_repair_ms) + ",\n";
  out += "    \"median_full_resolve_ms\": " +
         json_number(s.median_full_resolve_ms) + ",\n";
  out += "    \"speedup\": " + json_number(s.speedup) + "\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

}  // namespace domset::dyn
