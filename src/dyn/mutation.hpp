/// \file mutation.hpp
/// \brief The textual mutation grammar of the dynamic-graph subsystem.
//
// A mutation is one structural change to the resident graph:
//
//   add=<u>-<v>    insert the undirected edge {u, v}
//   del=<u>-<v>    remove the undirected edge {u, v}
//   addnode=<v>    append node v (v must be the next unused id)
//   delnode=<v>    detach node v (drops all incident edges; the id stays
//                  valid and the node lives on isolated)
//
// Atoms join into batches with '+' ("add=0-1+del=2-3"), mirroring the
// fault grammar in sim/fault.hpp, and `parse`/`to_string` round-trip
// through a canonical form (edge endpoints ordered small-large).  Log
// files carry one atom per line with '#' comments and 1-based line
// numbers in every error, like the edge-list parser in graph/io.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace domset::dyn {

enum class mutation_kind : std::uint8_t { add_edge, del_edge, add_node, del_node };

struct mutation {
  mutation_kind kind = mutation_kind::add_edge;
  /// Edge endpoints for add/del (canonically u < v); node operations
  /// store the node in both fields.
  graph::node_id u = 0;
  graph::node_id v = 0;

  friend bool operator==(const mutation&, const mutation&) = default;
};

/// Renders the canonical atom ("add=2-5", "delnode=7").
[[nodiscard]] std::string to_string(const mutation& m);
/// Renders a '+'-joined batch ("" for an empty batch).
[[nodiscard]] std::string to_string(std::span<const mutation> batch);

/// Parses a single atom (throws std::invalid_argument on anything else,
/// including trailing characters).
[[nodiscard]] mutation parse_mutation(std::string_view spec);
/// Parses a '+'-joined batch; the empty string is the empty batch.
[[nodiscard]] std::vector<mutation> parse_mutation_list(std::string_view spec);

/// Parses a mutation log: one atom per line, blank lines and '#'
/// comments ignored; errors name the 1-based line.
[[nodiscard]] std::vector<mutation> parse_mutation_log(std::string_view text);
/// Reads and parses a log file (throws std::runtime_error if unreadable).
[[nodiscard]] std::vector<mutation> load_mutation_log(const std::string& path);

}  // namespace domset::dyn
