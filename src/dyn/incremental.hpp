/// \file incremental.hpp
/// \brief Frontier-restricted incremental re-solve of a resident instance.
//
// The LOCAL-model reason this works: every registered solver computes
// each node's output from an O(k)-hop neighborhood, so after a batch of
// mutations the *correct* output can only differ inside a bounded ball
// around the touched nodes.  The engine keeps the last solution as the
// incumbent, and per epoch:
//
//   1. commits the pending batch (dyn::dynamic_graph, snapshot isolation),
//   2. grows the dirty ball: radius-r multi-source BFS around the touched
//      nodes, run by core::dirty_region over the committed overlay view
//      (no CSR materialization),
//   3. extracts the ball's induced subgraph, re-runs the incumbent
//      registry solver on it with this epoch's derived seed,
//   4. splices only *interior* decisions (depth < r) back; boundary-shell
//      nodes (depth == r) stay pinned to their current in/out status, so
//      the rest of the graph is untouched by construction,
//   5. re-checks coverage inside the ball -- the only place holes can
//      appear -- and patches any residue with the deterministic greedy
//      pass (core::greedy_patch),
//   6. falls back to a full re-solve when the ball exceeds
//      `full_fraction` of the graph (the escape hatch: a batch that
//      dirties half the graph deserves a fresh global run).
//
// Determinism: epoch e always solves under seed derive_seed(seed, e), and
// every stage above is a deterministic function of (graph, incumbent,
// batch) -- so replay digests are bit-identical across thread counts and
// push/pull delivery, inheriting the engine's own contract.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/solver.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/mutation.hpp"
#include "exec/context.hpp"
#include "graph/graph.hpp"

namespace domset::dyn {

struct incremental_params {
  /// Registry name of the incumbent solver (must be integral-output).
  std::string solver = "pipeline";
  api::param_map solver_params;
  exec::context exec;
  /// Dirty-ball radius in hops (>= 1).  Exact LOCAL equivalence would
  /// need the solver's full round count; a truncated radius plus the
  /// pinned boundary and the coverage patch is the engineering
  /// compromise -- see docs/dynamic.md.
  std::uint32_t radius = 2;
  /// Full re-solve when ball size > full_fraction * nodes (0 forces a
  /// full re-solve every epoch; must be >= 0).
  double full_fraction = 0.25;
  /// Degree cap on the dirty-ball frontier (0 = off).  Nodes whose
  /// committed degree exceeds the cap enter the ball pinned to the
  /// boundary shell instead of fanning out -- hub-heavy graphs keep
  /// radius 2 at large batches instead of tripping the escape hatch.
  /// See core::dirty_region and docs/dynamic.md.
  std::uint32_t frontier_cap = 0;
};

/// What one epoch did (timings belong to the caller).
struct epoch_report {
  std::uint64_t epoch = 0;
  std::size_t mutations = 0;      ///< batch size committed
  std::size_t touched = 0;        ///< distinct nodes the batch touched
  std::size_t ball_nodes = 0;     ///< dirty-ball size (0 on empty batch)
  std::size_t capped_nodes = 0;   ///< frontier-cap pins (0 when cap off)
  std::size_t interior_nodes = 0; ///< re-decided nodes (depth < radius)
  bool full_resolve = false;      ///< escape hatch taken
  std::size_t holes_patched = 0;  ///< post-splice coverage holes fixed
  std::size_t changed = 0;        ///< membership churn vs previous epoch
  std::size_t size = 0;           ///< solution size after the epoch
  std::size_t nodes = 0;          ///< graph shape after the epoch
  std::size_t edges = 0;
  std::uint64_t digest = 0;       ///< FNV-1a over the solution bits
};

class incremental_engine {
 public:
  /// Solves `base` from scratch (epoch 0) and keeps it resident.  Throws
  /// std::invalid_argument for fractional-only solvers, radius 0 or a
  /// negative full_fraction.
  incremental_engine(graph::graph base, incremental_params params);

  /// The resident graph; accumulate a batch with `network().apply(m)`,
  /// then seal it with `commit_and_repair()`.
  [[nodiscard]] dynamic_graph& network() { return dg_; }
  [[nodiscard]] const dynamic_graph& network() const { return dg_; }

  /// Commits the pending batch as the next epoch and repairs the
  /// incumbent (dirty ball -> subsolve -> splice -> patch, or the full
  /// re-solve fallback).
  epoch_report commit_and_repair();

  /// Convenience: applies `batch` and commits it in one call.
  epoch_report step(std::span<const mutation> batch);

  [[nodiscard]] const std::vector<std::uint8_t>& solution() const {
    return in_set_;
  }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t digest() const;
  [[nodiscard]] std::uint64_t epoch() const { return dg_.epoch(); }
  /// Materialized committed snapshot (delegates to the dynamic graph).
  [[nodiscard]] graph::graph snapshot() { return dg_.snapshot(); }

  /// From-scratch re-solve of the current snapshot under this epoch's
  /// seed -- the comparison baseline.  Pure measurement: the incumbent
  /// solution is NOT replaced.
  [[nodiscard]] api::solve_result full_resolve();

 private:
  [[nodiscard]] api::solve_result run_solver(const graph::graph& g,
                                             std::uint64_t epoch_no) const;

  dynamic_graph dg_;
  incremental_params params_;
  const api::solver* solver_ = nullptr;
  std::vector<std::uint8_t> in_set_;
};

}  // namespace domset::dyn
