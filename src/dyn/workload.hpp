/// \file workload.hpp
/// \brief Seeded mutation-stream generator for dynamic-graph benchmarks.
//
// A pure function of its seed: the same (params, graph history) always
// yields the same mutation stream, independent of thread count or
// delivery mode, so replay benchmarks are deterministic end to end.
// Two endpoint-sampling modes:
//   * uniform -- endpoints uniform over the live node ids,
//   * hub     -- endpoints drawn by picking a random *adjacency slot* of
//                the committed snapshot, i.e. degree-proportional, which
//                concentrates churn on hubs the way real social/web
//                traffic does.
// Edge deletions sample a random committed adjacency slot and are
// validity-checked against the live (pending-inclusive) view; every
// sample retries a bounded number of times before giving up, so the
// generator fails loudly on saturated graphs instead of looping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "dyn/dynamic_graph.hpp"
#include "dyn/mutation.hpp"
#include "graph/graph.hpp"

namespace domset::dyn {

enum class workload_bias : std::uint8_t { uniform, hub };

[[nodiscard]] std::string_view to_string(workload_bias bias);
/// Parses "uniform" | "hub" (throws std::invalid_argument).
[[nodiscard]] workload_bias parse_workload_bias(std::string_view text);

struct workload_params {
  workload_bias bias = workload_bias::uniform;
  std::uint64_t seed = 1;
  /// Operation mix (normalized over their sum; all-zero throws).
  double p_add = 0.55;
  double p_del = 0.35;
  double p_addnode = 0.05;
  double p_delnode = 0.05;
};

/// Draws mutations valid against `g`'s live (pending-inclusive) view.
/// Call `next` once per mutation and apply it before drawing again.
class workload {
 public:
  explicit workload(const workload_params& params);

  /// Next valid mutation (throws std::runtime_error after too many
  /// rejected samples, e.g. deleting from an edgeless graph).  `base` is
  /// the CSR deletion slots and hub bias sample from -- pass
  /// `g.rebase_point()` (stale entries are re-checked against the live
  /// view and rejected).
  [[nodiscard]] mutation next(const dynamic_graph& g,
                              const graph::graph& base);

 private:
  [[nodiscard]] graph::node_id sample_endpoint(const dynamic_graph& g,
                                               const graph::graph& base);

  workload_params params_;
  double sum_ = 0.0;
  common::rng rng_;
};

}  // namespace domset::dyn
