#include "dyn/dynamic_graph.hpp"

#include <algorithm>
#include <iterator>
#include <span>
#include <stdexcept>
#include <utility>

namespace domset::dyn {

namespace {

bool contains(const std::vector<graph::node_id>& sorted, graph::node_id x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

void insert_sorted(std::vector<graph::node_id>& sorted, graph::node_id x) {
  sorted.insert(std::lower_bound(sorted.begin(), sorted.end(), x), x);
}

void erase_sorted(std::vector<graph::node_id>& sorted, graph::node_id x) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  sorted.erase(it);
}

[[noreturn]] void bad_apply(const mutation& m, const std::string& why) {
  throw std::invalid_argument("apply " + to_string(m) + ": " + why);
}

}  // namespace

dynamic_graph::dynamic_graph(graph::graph base) : base_(std::move(base)) {
  committed_n_ = live_n_ = base_.node_count();
  committed_m_ = live_m_ = base_.edge_count();
  added_.resize(committed_n_);
  removed_.resize(committed_n_);
  p_added_.resize(committed_n_);
  p_removed_.resize(committed_n_);
}

bool dynamic_graph::base_has_edge(graph::node_id u, graph::node_id v) const {
  if (u >= base_.node_count() || v >= base_.node_count()) return false;
  const auto row = base_.neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

bool dynamic_graph::committed_has_edge(graph::node_id u,
                                       graph::node_id v) const {
  if (u >= committed_n_ || v >= committed_n_) return false;
  if (contains(added_[u], v)) return true;
  if (contains(removed_[u], v)) return false;
  return base_has_edge(u, v);
}

bool dynamic_graph::has_edge(graph::node_id u, graph::node_id v) const {
  return committed_has_edge(u, v);
}

std::size_t dynamic_graph::degree(graph::node_id v) const {
  if (v >= committed_n_)
    throw std::invalid_argument("degree: node " + std::to_string(v) +
                                " out of range");
  const std::size_t base_deg =
      v < base_.node_count() ? base_.neighbors(v).size() : 0;
  return base_deg - removed_[v].size() + added_[v].size();
}

std::vector<graph::node_id> dynamic_graph::neighbors(graph::node_id v) const {
  if (v >= committed_n_)
    throw std::invalid_argument("neighbors: node " + std::to_string(v) +
                                " out of range");
  // Merge the base row (minus removals) with the additions; all three
  // sequences are sorted, so the output is too.
  const std::span<const graph::node_id> row =
      v < base_.node_count() ? base_.neighbors(v)
                             : std::span<const graph::node_id>{};
  const std::vector<graph::node_id>& add = added_[v];
  const std::vector<graph::node_id>& rem = removed_[v];
  std::vector<graph::node_id> out;
  out.reserve(row.size() - rem.size() + add.size());
  std::size_t i = 0, j = 0, k = 0;
  while (i < row.size() || j < add.size()) {
    if (i < row.size()) {
      // Skip base entries struck by the removal list.
      while (k < rem.size() && rem[k] < row[i]) ++k;
      if (k < rem.size() && rem[k] == row[i]) {
        ++i;
        continue;
      }
    }
    if (i >= row.size())
      out.push_back(add[j++]);
    else if (j >= add.size() || row[i] < add[j])  // rows and adds are disjoint
      out.push_back(row[i++]);
    else
      out.push_back(add[j++]);
  }
  return out;
}

core::adjacency_view dynamic_graph::view() const {
  core::adjacency_view view;
  view.node_count = committed_n_;
  view.for_each_neighbor =
      [this](graph::node_id v,
             const std::function<void(graph::node_id)>& f) {
        for (const graph::node_id u : neighbors(v)) f(u);
      };
  view.degree = [this](graph::node_id v) { return degree(v); };
  return view;
}

graph::graph dynamic_graph::snapshot() {
  rebase();
  return base_;
}

void dynamic_graph::rebase() {
  if (delta_entries_ == 0 && committed_n_ == base_.node_count()) return;
  graph::graph_builder builder(committed_n_);
  for (graph::node_id v = 0; v < committed_n_; ++v) {
    for (const graph::node_id u : neighbors(v)) {
      if (v < u) builder.add_edge(v, u);
    }
  }
  base_ = std::move(builder).build();
  added_.assign(committed_n_, {});
  removed_.assign(committed_n_, {});
  delta_entries_ = 0;
}

std::vector<graph::node_id> dynamic_graph::live_neighbors(
    graph::node_id v) const {
  std::vector<graph::node_id> committed;
  if (v < committed_n_) {
    for (const graph::node_id u : neighbors(v)) {
      if (!contains(p_removed_[v], u)) committed.push_back(u);
    }
  }
  const std::vector<graph::node_id>& add = p_added_[v];
  if (add.empty()) return committed;
  std::vector<graph::node_id> merged;
  merged.reserve(committed.size() + add.size());
  std::merge(committed.begin(), committed.end(), add.begin(), add.end(),
             std::back_inserter(merged));
  return merged;
}

bool dynamic_graph::live_has_edge(graph::node_id u, graph::node_id v) const {
  if (u >= live_n_ || v >= live_n_) return false;
  if (contains(p_added_[u], v)) return true;
  if (contains(p_removed_[u], v)) return false;
  return committed_has_edge(u, v);
}

std::size_t dynamic_graph::live_degree(graph::node_id v) const {
  if (v >= live_n_)
    throw std::invalid_argument("live_degree: node " + std::to_string(v) +
                                " out of range");
  std::size_t deg = 0;
  if (v < committed_n_) deg = degree(v);
  return deg - p_removed_[v].size() + p_added_[v].size();
}

void dynamic_graph::pending_add(graph::node_id u, graph::node_id v) {
  const auto one = [this](graph::node_id a, graph::node_id b) {
    if (contains(p_removed_[a], b))
      erase_sorted(p_removed_[a], b);
    else
      insert_sorted(p_added_[a], b);
  };
  one(u, v);
  one(v, u);
}

void dynamic_graph::pending_del(graph::node_id u, graph::node_id v) {
  const auto one = [this](graph::node_id a, graph::node_id b) {
    if (contains(p_added_[a], b))
      erase_sorted(p_added_[a], b);
    else
      insert_sorted(p_removed_[a], b);
  };
  one(u, v);
  one(v, u);
}

void dynamic_graph::apply(const mutation& m) {
  const auto check_node = [&](graph::node_id v) {
    if (v >= live_n_)
      bad_apply(m, "node " + std::to_string(v) + " out of range (" +
                       std::to_string(live_n_) + " nodes)");
  };
  const auto touch = [this](graph::node_id v) {
    pending_touched_.push_back(v);
  };

  switch (m.kind) {
    case mutation_kind::add_edge: {
      if (m.u == m.v) bad_apply(m, "edge endpoints must differ");
      check_node(m.u);
      check_node(m.v);
      if (live_has_edge(m.u, m.v)) bad_apply(m, "edge already exists");
      pending_add(m.u, m.v);
      ++live_m_;
      touch(m.u);
      touch(m.v);
      break;
    }
    case mutation_kind::del_edge: {
      check_node(m.u);
      check_node(m.v);
      if (!live_has_edge(m.u, m.v)) bad_apply(m, "no such edge");
      pending_del(m.u, m.v);
      --live_m_;
      touch(m.u);
      touch(m.v);
      break;
    }
    case mutation_kind::add_node: {
      if (m.u != live_n_)
        bad_apply(m, "expected next node id " + std::to_string(live_n_));
      ++live_n_;
      p_added_.emplace_back();
      p_removed_.emplace_back();
      touch(m.u);
      break;
    }
    case mutation_kind::del_node: {
      check_node(m.u);
      // Detach: drop every incident edge; the id stays valid (isolated).
      for (const graph::node_id u : live_neighbors(m.u)) {
        pending_del(m.u, u);
        --live_m_;
        touch(u);
      }
      touch(m.u);
      break;
    }
  }
  pending_log_.push_back(m);
}

commit_result dynamic_graph::commit() {
  if (added_.size() < live_n_) {
    added_.resize(live_n_);
    removed_.resize(live_n_);
  }
  std::sort(pending_touched_.begin(), pending_touched_.end());
  pending_touched_.erase(
      std::unique(pending_touched_.begin(), pending_touched_.end()),
      pending_touched_.end());

  // Fold the pending delta into the committed one.  A pending addition
  // of a previously removed edge cancels the removal (and vice versa),
  // which keeps the invariants: added_ is disjoint from the base rows,
  // removed_ is a subset of them.
  for (const graph::node_id v : pending_touched_) {
    delta_entries_ -= added_[v].size() + removed_[v].size();
    for (const graph::node_id u : p_added_[v]) {
      if (contains(removed_[v], u))
        erase_sorted(removed_[v], u);
      else
        insert_sorted(added_[v], u);
    }
    for (const graph::node_id u : p_removed_[v]) {
      if (contains(added_[v], u))
        erase_sorted(added_[v], u);
      else
        insert_sorted(removed_[v], u);
    }
    delta_entries_ += added_[v].size() + removed_[v].size();
    p_added_[v].clear();
    p_removed_[v].clear();
  }
  committed_n_ = live_n_;
  committed_m_ = live_m_;
  ++epoch_;

  commit_result result;
  result.epoch = epoch_;
  result.mutations = std::move(pending_log_);
  pending_log_.clear();
  result.touched = std::move(pending_touched_);
  pending_touched_.clear();

  // Long mutation streams would otherwise degrade overlay queries; fold
  // the delta into a fresh CSR once it rivals the base in size.
  if (delta_entries_ > std::max<std::size_t>(4096, base_.edge_count()))
    rebase();
  return result;
}

}  // namespace domset::dyn
