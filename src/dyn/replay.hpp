/// \file replay.hpp
/// \brief The `domset replay` workload runner and its `domset-dynamic/1`
/// JSON document.
//
// Drives an incremental_engine through a mutation stream -- a parsed log
// file or the seeded dyn::workload generator -- in batches of `batch`
// mutations per epoch, verifying the spliced solution against the
// materialized snapshot after every epoch (a failed verification throws:
// validity is a contract, not a statistic).  Every `sample_full`-th
// epoch additionally times a from-scratch re-solve of the same snapshot
// for the repair-vs-full comparison; the sample is measurement only, the
// incumbent is never replaced by it.
//
// The emitted document (schema "domset-dynamic/1") carries one record
// per epoch -- mutations applied, touched nodes, dirty-ball size,
// repair_ms, solution size, per-epoch digest, and full_resolve_ms/
// full_size only on sampled epochs -- plus a summary with p50/p99 repair
// latency and the sampled-epoch speedup.  Validated by
// scripts/validate_result_json.py.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/solver.hpp"
#include "dyn/incremental.hpp"
#include "dyn/mutation.hpp"
#include "dyn/workload.hpp"
#include "exec/context.hpp"
#include "graph/graph.hpp"

namespace domset::dyn {

struct replay_spec {
  incremental_params inc;
  /// Mutations per epoch (> 0).
  std::size_t batch = 32;
  /// Epoch count for generated streams; file streams run
  /// ceil(|log| / batch) epochs and ignore this.
  std::size_t epochs = 64;
  /// Every k-th epoch also times a full re-solve (0 = never).
  std::size_t sample_full = 8;
  /// File-driven stream when non-empty; otherwise `gen` drives.
  std::vector<mutation> log;
  workload_params gen;
  /// Provenance echo for the JSON record ("file:<path>" | "gen:<bias>").
  std::string mutations_label;
};

struct replay_epoch {
  epoch_report report;
  double apply_ms = 0.0;   ///< mutation application
  double repair_ms = 0.0;  ///< commit + incremental repair (or fallback)
  double verify_ms = 0.0;  ///< snapshot + dominating-set verification
  bool valid = false;      ///< always true on return (failure throws)
  bool sampled = false;    ///< full re-solve measured this epoch
  double full_resolve_ms = 0.0;  ///< sampled epochs only
  std::size_t full_size = 0;     ///< sampled epochs only
};

struct replay_summary {
  std::size_t epochs = 0;
  std::size_t full_resolves = 0;  ///< epochs that took the escape hatch
  std::size_t initial_size = 0;
  std::size_t final_size = 0;
  std::string final_digest;  ///< 16 hex chars
  double initial_solve_ms = 0.0;
  double median_repair_ms = 0.0;
  double p99_repair_ms = 0.0;
  double median_full_resolve_ms = 0.0;  ///< 0 when nothing was sampled
  double speedup = 0.0;  ///< median_full / median_repair (0 when unsampled)
};

struct replay_result {
  std::string alg;
  api::param_map params;
  exec::context exec;
  std::string graph_family;
  std::size_t nodes = 0;  ///< initial shape
  std::size_t edges = 0;
  std::uint32_t max_degree = 0;
  std::string mutations_label;
  std::size_t batch = 0;
  std::uint32_t radius = 0;
  double full_fraction = 0.0;
  std::uint32_t frontier_cap = 0;
  std::size_t sample_full = 0;
  std::vector<replay_epoch> epochs;
  replay_summary summary;
};

/// Runs the replay (throws std::runtime_error when an epoch's spliced
/// solution fails verification, std::invalid_argument on a mutation the
/// graph rejects -- both name the epoch).
[[nodiscard]] replay_result run_replay(const graph::graph& g,
                                       std::string_view graph_family,
                                       const replay_spec& spec);

/// Serializes the result as one pretty-printed `domset-dynamic/1` object.
[[nodiscard]] std::string to_json(const replay_result& result);

}  // namespace domset::dyn
