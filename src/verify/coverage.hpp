/// \file coverage.hpp
/// \brief Graceful-degradation report for faulty runs.
//
// Under the reliable model a solution either dominates or the run is
// broken -- verify::is_dominating_set is the right (binary) check.  A
// faulty run degrades *locally* (the paper's algorithms are LOCAL-model:
// a node's output depends on its O(k)-hop neighborhood, so a crash can
// only poke holes near itself), and the interesting questions become
// quantitative: how many nodes lost coverage, how far is the nearest
// surviving dominator, and which scheduled fault is to blame.  This
// report answers all three and is what `domset run --allow-partial`
// serializes instead of failing outright.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/fault.hpp"

namespace domset::verify {

/// One fault's share of the damage.
struct fault_attribution {
  /// Canonical textual form of the fault (sim::to_string).
  std::string fault;
  /// Coverage holes inside the fault's blast radius: the crashed node's
  /// closed neighborhood for crashes, both endpoints' closed
  /// neighborhoods for link cuts, the whole graph for bursts/dups (their
  /// loss is i.i.d., so every hole is plausibly theirs).  Holes near two
  /// faults count for both -- attribution localizes blame, it does not
  /// partition it.
  std::size_t holes = 0;
};

/// Post-run degradation report.
struct coverage_report {
  std::size_t nodes = 0;
  /// Nodes with no dominator in their closed neighborhood (sorted).
  std::vector<graph::node_id> undominated;
  /// Fraction of nodes dominated (1.0 = a valid dominating set).
  double covered_fraction = 1.0;
  /// Maximum over the undominated nodes of the BFS distance to the
  /// nearest set member: how deep the worst hole is.  0 when there are no
  /// holes; `nodes` (an impossible distance) when a hole's component
  /// contains no member at all.
  std::size_t max_hole_radius = 0;
  /// Per-scheduled-fault damage estimates (empty without a plan).
  std::vector<fault_attribution> attribution;

  [[nodiscard]] std::size_t holes() const noexcept {
    return undominated.size();
  }
  [[nodiscard]] bool fully_covered() const noexcept {
    return undominated.empty();
  }
};

/// Builds the degradation report for `in_set` on `g`.  With a fault plan,
/// each scheduled fault is charged the holes inside its blast radius.
[[nodiscard]] coverage_report coverage(const graph::graph& g,
                                       std::span<const std::uint8_t> in_set,
                                       const sim::fault_plan* plan = nullptr);

}  // namespace domset::verify
