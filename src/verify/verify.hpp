// Solution checkers shared by tests, benches and examples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace domset::verify {

/// True iff every node has a member of `in_set` in its closed neighborhood.
[[nodiscard]] bool is_dominating_set(const graph::graph& g,
                                     std::span<const std::uint8_t> in_set);

/// Nodes with no dominator in their closed neighborhood (empty iff
/// is_dominating_set).
[[nodiscard]] std::vector<graph::node_id> undominated_nodes(
    const graph::graph& g, std::span<const std::uint8_t> in_set);

/// Number of selected nodes.
[[nodiscard]] std::size_t set_size(std::span<const std::uint8_t> in_set);

/// Total cost of the selected nodes.
[[nodiscard]] double set_cost(std::span<const std::uint8_t> in_set,
                              std::span<const double> cost);

/// True iff the set is dominating and no proper subset of it is (i.e. every
/// member has a "private" dominatee).  Not required by the paper's
/// algorithms (randomized rounding can overshoot), but useful to quantify
/// redundancy in the benches.
[[nodiscard]] bool is_minimal_dominating_set(
    const graph::graph& g, std::span<const std::uint8_t> in_set);

}  // namespace domset::verify
