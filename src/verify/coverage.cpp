#include "verify/coverage.hpp"

#include <algorithm>
#include <deque>

#include "verify/verify.hpp"

namespace domset::verify {

namespace {

/// Multi-source BFS distance from every node to the nearest set member.
/// Distance `n` (impossible: paths have at most n-1 edges) marks nodes
/// whose component holds no member.
std::vector<std::size_t> distance_to_set(const graph::graph& g,
                                         std::span<const std::uint8_t> in_set) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> dist(n, n);
  std::deque<graph::node_id> queue;
  for (graph::node_id v = 0; v < n; ++v) {
    if (in_set[v] != 0) {
      dist[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const graph::node_id v = queue.front();
    queue.pop_front();
    for (const graph::node_id u : g.neighbors(v)) {
      if (dist[u] != n) continue;
      dist[u] = dist[v] + 1;
      queue.push_back(u);
    }
  }
  return dist;
}

/// Holes within the closed neighborhood of `center`.  `hole` is the
/// indicator vector of the undominated nodes.
std::size_t holes_near(const graph::graph& g,
                       std::span<const std::uint8_t> hole,
                       graph::node_id center) {
  std::size_t count = hole[center] != 0 ? 1 : 0;
  for (const graph::node_id u : g.neighbors(center)) count += hole[u] != 0;
  return count;
}

}  // namespace

coverage_report coverage(const graph::graph& g,
                         std::span<const std::uint8_t> in_set,
                         const sim::fault_plan* plan) {
  coverage_report report;
  report.nodes = g.node_count();
  report.undominated = undominated_nodes(g, in_set);
  report.covered_fraction =
      report.nodes == 0
          ? 1.0
          : 1.0 - static_cast<double>(report.undominated.size()) /
                      static_cast<double>(report.nodes);
  if (!report.undominated.empty()) {
    const std::vector<std::size_t> dist = distance_to_set(g, in_set);
    for (const graph::node_id v : report.undominated)
      report.max_hole_radius = std::max(report.max_hole_radius, dist[v]);
  }

  if (plan != nullptr && !plan->empty()) {
    std::vector<std::uint8_t> hole(report.nodes, 0);
    for (const graph::node_id v : report.undominated) hole[v] = 1;
    const std::size_t total = report.undominated.size();
    for (const sim::node_fault& f : plan->node_faults) {
      fault_attribution a;
      a.fault = sim::to_string(f);
      if (f.node < report.nodes) a.holes = holes_near(g, hole, f.node);
      report.attribution.push_back(std::move(a));
    }
    for (const sim::link_fault& f : plan->link_faults) {
      fault_attribution a;
      a.fault = sim::to_string(f);
      std::size_t near = 0;
      if (f.u < report.nodes) near += holes_near(g, hole, f.u);
      if (f.v < report.nodes) near += holes_near(g, hole, f.v);
      // The two endpoint neighborhoods overlap (each contains both
      // endpoints at least); cap at the true hole count so the estimate
      // stays a count, not a multiset size.
      a.holes = std::min(near, total);
      report.attribution.push_back(std::move(a));
    }
    for (const sim::burst_fault& f : plan->bursts) {
      report.attribution.push_back({sim::to_string(f), total});
    }
    for (const sim::dup_fault& f : plan->dups) {
      // Duplication never removes coverage; it is listed with zero blame
      // so reports enumerate the full plan.
      report.attribution.push_back({sim::to_string(f), 0});
    }
  }
  return report;
}

}  // namespace domset::verify
