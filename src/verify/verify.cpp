#include "verify/verify.hpp"

namespace domset::verify {

bool is_dominating_set(const graph::graph& g,
                       std::span<const std::uint8_t> in_set) {
  return undominated_nodes(g, in_set).empty();
}

std::vector<graph::node_id> undominated_nodes(
    const graph::graph& g, std::span<const std::uint8_t> in_set) {
  std::vector<graph::node_id> out;
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    bool dominated = in_set[v] != 0;
    if (!dominated) {
      for (const graph::node_id u : g.neighbors(v)) {
        if (in_set[u] != 0) {
          dominated = true;
          break;
        }
      }
    }
    if (!dominated) out.push_back(v);
  }
  return out;
}

std::size_t set_size(std::span<const std::uint8_t> in_set) {
  std::size_t size = 0;
  for (const std::uint8_t b : in_set) size += b != 0 ? 1 : 0;
  return size;
}

double set_cost(std::span<const std::uint8_t> in_set,
                std::span<const double> cost) {
  double total = 0.0;
  for (std::size_t i = 0; i < in_set.size(); ++i)
    if (in_set[i] != 0) total += cost[i];
  return total;
}

bool is_minimal_dominating_set(const graph::graph& g,
                               std::span<const std::uint8_t> in_set) {
  if (!is_dominating_set(g, in_set)) return false;
  // Member v is redundant iff every node in N[v] has another dominator.
  std::vector<std::uint32_t> dominator_count(g.node_count(), 0);
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    if (in_set[v]) ++dominator_count[v];
    for (const graph::node_id u : g.neighbors(v))
      if (in_set[u]) ++dominator_count[v];
  }
  for (graph::node_id v = 0; v < g.node_count(); ++v) {
    if (!in_set[v]) continue;
    bool has_private = dominator_count[v] == 1;  // v dominates itself only
    if (!has_private) {
      for (const graph::node_id u : g.neighbors(v)) {
        if (dominator_count[u] == 1) {
          has_private = true;
          break;
        }
      }
    }
    if (!has_private) return false;
  }
  return true;
}

}  // namespace domset::verify
